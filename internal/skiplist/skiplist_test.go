package skiplist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func intList() *List[int] {
	return New(func(a, b int) int { return a - b })
}

func TestInsertContainsSequential(t *testing.T) {
	l := intList()
	for _, v := range []int{5, 3, 8, 1} {
		if !l.Insert(v) {
			t.Errorf("Insert(%d) on fresh value", v)
		}
	}
	if l.Insert(5) {
		t.Error("duplicate insert must fail")
	}
	if l.Len() != 4 {
		t.Errorf("Len = %d", l.Len())
	}
	for _, v := range []int{1, 3, 5, 8} {
		if !l.Contains(v) {
			t.Errorf("Contains(%d)", v)
		}
	}
	if l.Contains(2) {
		t.Error("Contains(2)")
	}
}

func TestMinDeleteMin(t *testing.T) {
	l := intList()
	if _, ok := l.Min(); ok {
		t.Error("Min on empty")
	}
	if _, ok := l.DeleteMin(); ok {
		t.Error("DeleteMin on empty")
	}
	for _, v := range []int{5, 3, 8} {
		l.Insert(v)
	}
	if m, _ := l.Min(); m != 3 {
		t.Errorf("Min = %d", m)
	}
	got := make([]int, 0, 3)
	for {
		m, ok := l.DeleteMin()
		if !ok {
			break
		}
		got = append(got, m)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 8 {
		t.Errorf("drain order = %v", got)
	}
}

func TestDelete(t *testing.T) {
	l := intList()
	for i := 0; i < 50; i++ {
		l.Insert(i)
	}
	if l.Delete(100) {
		t.Error("delete absent")
	}
	for i := 0; i < 50; i += 2 {
		if !l.Delete(i) {
			t.Errorf("Delete(%d)", i)
		}
	}
	if l.Len() != 25 {
		t.Errorf("Len = %d", l.Len())
	}
	for i := 0; i < 50; i++ {
		if l.Contains(i) != (i%2 == 1) {
			t.Errorf("Contains(%d) wrong after deletes", i)
		}
	}
}

func TestAscendSorted(t *testing.T) {
	l := intList()
	perm := rand.New(rand.NewSource(7)).Perm(2000)
	for _, v := range perm {
		l.Insert(v)
	}
	var got []int
	l.Ascend(func(v int) bool { got = append(got, v); return true })
	if len(got) != 2000 || !sort.IntsAreSorted(got) {
		t.Error("Ascend must be sorted and complete")
	}
}

func TestAscendFrom(t *testing.T) {
	l := intList()
	for i := 0; i < 100; i += 10 {
		l.Insert(i)
	}
	var got []int
	l.AscendFrom(35, func(v int) bool { got = append(got, v); return true })
	if len(got) != 6 || got[0] != 40 {
		t.Errorf("AscendFrom(35) = %v", got)
	}
	got = got[:0]
	l.AscendFrom(40, func(v int) bool { got = append(got, v); return true })
	if len(got) != 6 || got[0] != 40 {
		t.Errorf("AscendFrom(40) = %v (must be inclusive)", got)
	}
}

func TestGetOrInsertReturnsExisting(t *testing.T) {
	type box struct {
		k int
		p *int
	}
	l := New(func(a, b box) int { return a.k - b.k })
	x, y := 1, 2
	first, added := l.GetOrInsert(box{1, &x})
	if !added || first.p != &x {
		t.Error("first GetOrInsert should insert")
	}
	second, added := l.GetOrInsert(box{1, &y})
	if added || second.p != &x {
		t.Error("second GetOrInsert must return the stored element")
	}
}

func TestClear(t *testing.T) {
	l := intList()
	for i := 0; i < 10; i++ {
		l.Insert(i)
	}
	l.Clear()
	if l.Len() != 0 || l.Contains(3) {
		t.Error("Clear")
	}
}

func TestConcurrentInserts(t *testing.T) {
	l := intList()
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Insert(w*per + i)
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", l.Len(), workers*per)
	}
	var got []int
	l.Ascend(func(v int) bool { got = append(got, v); return true })
	if len(got) != workers*per || !sort.IntsAreSorted(got) {
		t.Error("traversal after concurrent inserts must be sorted and complete")
	}
}

func TestConcurrentDuplicateInserts(t *testing.T) {
	// All workers insert the same keys; exactly one insert per key must win.
	l := intList()
	const workers = 8
	const keys = 1000
	wins := make([][]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wins[w] = make([]bool, keys)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				wins[w][i] = l.Insert(i)
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != keys {
		t.Fatalf("Len = %d, want %d", l.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		n := 0
		for w := 0; w < workers; w++ {
			if wins[w][i] {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("key %d won %d times, want exactly 1", i, n)
		}
	}
}

func TestConcurrentInsertDelete(t *testing.T) {
	l := intList()
	for i := 0; i < 10000; i += 2 {
		l.Insert(i)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // inserter: odd keys
		defer wg.Done()
		for i := 1; i < 10000; i += 2 {
			l.Insert(i)
		}
	}()
	go func() { // deleter: even keys
		defer wg.Done()
		for i := 0; i < 10000; i += 2 {
			l.Delete(i)
		}
	}()
	wg.Wait()
	if l.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", l.Len())
	}
	for i := 0; i < 10000; i++ {
		if l.Contains(i) != (i%2 == 1) {
			t.Fatalf("Contains(%d) wrong", i)
		}
	}
}

func TestConcurrentDeleteMinDrain(t *testing.T) {
	// Concurrent DeleteMin consumers must partition the elements.
	l := intList()
	const n = 8000
	for i := 0; i < n; i++ {
		l.Insert(i)
	}
	const workers = 8
	results := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				v, ok := l.DeleteMin()
				if !ok {
					return
				}
				results[w] = append(results[w], v)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]bool, n)
	total := 0
	for _, rs := range results {
		for _, v := range rs {
			if seen[v] {
				t.Fatalf("value %d extracted twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("extracted %d values, want %d", total, n)
	}
}

func TestSequentialMatchesReference(t *testing.T) {
	l := intList()
	ref := make(map[int]bool)
	r := rand.New(rand.NewSource(99))
	for op := 0; op < 20000; op++ {
		v := r.Intn(200)
		switch r.Intn(3) {
		case 0:
			if l.Insert(v) == ref[v] {
				t.Fatalf("Insert(%d) disagreed", v)
			}
			ref[v] = true
		case 1:
			if l.Delete(v) != ref[v] {
				t.Fatalf("Delete(%d) disagreed", v)
			}
			delete(ref, v)
		default:
			if l.Contains(v) != ref[v] {
				t.Fatalf("Contains(%d) disagreed", v)
			}
		}
	}
}

func TestQuickAscendIsSortedUnique(t *testing.T) {
	f := func(xs []int16) bool {
		l := intList()
		uniq := make(map[int]bool)
		for _, x := range xs {
			l.Insert(int(x))
			uniq[int(x)] = true
		}
		var got []int
		l.Ascend(func(v int) bool { got = append(got, v); return true })
		return len(got) == len(uniq) && sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapBasics(t *testing.T) {
	m := NewMap[int, string](func(a, b int) int { return a - b })
	if _, ok := m.Get(1); ok {
		t.Error("Get on empty")
	}
	v := m.GetOrCreate(1, func() string { return "one" })
	if v != "one" {
		t.Error("GetOrCreate create")
	}
	v = m.GetOrCreate(1, func() string { return "other" })
	if v != "one" {
		t.Error("GetOrCreate must return existing")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
	m.GetOrCreate(0, func() string { return "zero" })
	k, val, ok := m.Min()
	if !ok || k != 0 || val != "zero" {
		t.Errorf("Min = %d %q %v", k, val, ok)
	}
	if !m.Delete(0) || m.Delete(0) {
		t.Error("Delete semantics")
	}
	var keys []int
	m.Ascend(func(k int, _ string) bool { keys = append(keys, k); return true })
	if len(keys) != 1 || keys[0] != 1 {
		t.Errorf("Ascend keys = %v", keys)
	}
}

func TestMapConcurrentGetOrCreate(t *testing.T) {
	m := NewMap[int, *int](func(a, b int) int { return a - b })
	const workers = 8
	ptrs := make([]*int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ptrs[w] = m.GetOrCreate(7, func() *int { x := w; return &x })
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ptrs[w] != ptrs[0] {
			t.Fatal("GetOrCreate must converge on a single value per key")
		}
	}
}

func BenchmarkSkipListInsert(b *testing.B) {
	l := intList()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			l.Insert(i * 2654435761 % (1 << 30))
			i++
		}
	})
}

func BenchmarkSkipListContains(b *testing.B) {
	l := intList()
	for i := 0; i < 1<<16; i++ {
		l.Insert(i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			l.Contains(i & (1<<16 - 1))
			i++
		}
	})
}
