package stats

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values below 2^histSubBits land in unit-wide
// buckets; above that, each power-of-two octave is split into 2^histSubBits
// linear sub-buckets, bounding the relative error of any reconstructed
// quantile to 2^-histSubBits (~3%). The same log-linear scheme HdrHistogram
// uses, sized for int64 nanosecond latencies.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	histBuckets  = (64 - histSubBits) * histSubCount
)

// Histogram is a concurrent log-linear latency histogram. Observe is
// lock-free (one atomic add per recording plus sum/max upkeep), so load
// generator clients and server handlers can record into a shared instance
// without coordination; quantiles are reconstructed from the buckets with
// ≤ ~3% relative error. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	k := bits.Len64(u) - 1 // 2^k <= u < 2^(k+1), k >= histSubBits
	sub := int(u>>uint(k-histSubBits)) & (histSubCount - 1)
	return (k-histSubBits+1)*histSubCount + sub
}

// histValue returns the midpoint of bucket idx — the value reported for
// every observation that landed there.
func histValue(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	exp := idx/histSubCount + histSubBits - 1
	sub := int64(idx%histSubCount) | histSubCount
	lo := sub << uint(exp-histSubBits)
	width := int64(1) << uint(exp-histSubBits)
	return lo + width/2
}

// Observe records one value (typically a latency in nanoseconds).
func (h *Histogram) Observe(v int64) {
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records d as nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average recorded value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q in [0,1] — e.g. 0.5, 0.99,
// 0.999 — with ≤ ~3% relative error, or 0 when the histogram is empty.
// Concurrent Observes may or may not be included.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n-1)) + 1 // 1-based rank of the target observation
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return histValue(i)
		}
	}
	return h.max.Load()
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		cur, v := h.max.Load(), other.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// LatencySummary is a flat, JSON-ready digest of a latency histogram —
// what the serve load generator writes into the BENCH artifact.
type LatencySummary struct {
	Count     int64   `json:"count"`
	MeanNanos float64 `json:"mean_nanos"`
	P50Nanos  int64   `json:"p50_nanos"`
	P99Nanos  int64   `json:"p99_nanos"`
	P999Nanos int64   `json:"p999_nanos"`
	MaxNanos  int64   `json:"max_nanos"`
}

// Summary digests the histogram into its p50/p99/p999 quantiles.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:     h.Count(),
		MeanNanos: h.Mean(),
		P50Nanos:  h.Quantile(0.50),
		P99Nanos:  h.Quantile(0.99),
		P999Nanos: h.Quantile(0.999),
		MaxNanos:  h.Max(),
	}
}

// LatencyLine renders one aligned serve-report line for a named latency
// distribution: the load generator prints one per measured edge (ingest
// round-trip, quiesce visibility).
func LatencyLine(name string, s LatencySummary) string {
	d := func(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }
	return fmt.Sprintf("%-10s n=%-8d p50=%-10v p99=%-10v p999=%-10v max=%-10v mean=%v\n",
		name, s.Count, d(s.P50Nanos), d(s.P99Nanos), d(s.P999Nanos), d(s.MaxNanos),
		d(int64(s.MeanNanos)).Round(time.Microsecond))
}
