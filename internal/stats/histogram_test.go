package stats

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zero: count=%d p50=%d max=%d mean=%f",
			h.Count(), h.Quantile(0.5), h.Max(), h.Mean())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below histSubCount land in unit buckets: quantiles are exact.
	var h Histogram
	for v := int64(0); v < histSubCount; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != histSubCount-1 {
		t.Errorf("p100 = %d, want %d", got, histSubCount-1)
	}
	if got := h.Max(); got != histSubCount-1 {
		t.Errorf("max = %d, want %d", got, histSubCount-1)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Every reconstructed quantile must be within the documented ~3%
	// (2^-histSubBits) relative error of the true order statistic.
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~9 decades: exercises many octaves.
		v := int64(math.Exp(rng.Float64() * 21))
		vals = append(vals, v)
		h.Observe(v)
	}
	sortInt64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if relErr > 1.0/histSubCount+1e-9 {
			t.Errorf("q=%g: got %d want %d (rel err %.4f > %.4f)",
				q, got, want, relErr, 1.0/histSubCount)
		}
	}
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// The representative value of a bucket must map back to that bucket.
	for idx := 0; idx < histBuckets; idx++ {
		v := histValue(idx)
		if got := histIndex(v); got != idx {
			t.Fatalf("histIndex(histValue(%d)) = %d", idx, got)
		}
	}
	if histIndex(-5) != 0 {
		t.Errorf("negative values must clamp to bucket 0")
	}
}

func TestHistogramConcurrentObserveAndMerge(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	var m Histogram
	m.Observe(1 << 40)
	m.Merge(&h)
	if got := m.Count(); got != goroutines*per+1 {
		t.Fatalf("merged count = %d, want %d", got, goroutines*per+1)
	}
	if m.Max() < 1<<40 {
		t.Fatalf("merge lost max: %d", m.Max())
	}
}

func TestLatencyLine(t *testing.T) {
	var h Histogram
	h.Observe(1500)
	line := LatencyLine("ingest", h.Summary())
	if !strings.Contains(line, "ingest") || !strings.Contains(line, "n=1") {
		t.Fatalf("unexpected line: %q", line)
	}
}
