package stats

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zero: count=%d p50=%d max=%d mean=%f",
			h.Count(), h.Quantile(0.5), h.Max(), h.Mean())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below histSubCount land in unit buckets: quantiles are exact.
	var h Histogram
	for v := int64(0); v < histSubCount; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != histSubCount-1 {
		t.Errorf("p100 = %d, want %d", got, histSubCount-1)
	}
	if got := h.Max(); got != histSubCount-1 {
		t.Errorf("max = %d, want %d", got, histSubCount-1)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Every reconstructed quantile must be within the documented ~3%
	// (2^-histSubBits) relative error of the true order statistic.
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~9 decades: exercises many octaves.
		v := int64(math.Exp(rng.Float64() * 21))
		vals = append(vals, v)
		h.Observe(v)
	}
	sortInt64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if relErr > 1.0/histSubCount+1e-9 {
			t.Errorf("q=%g: got %d want %d (rel err %.4f > %.4f)",
				q, got, want, relErr, 1.0/histSubCount)
		}
	}
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// The representative value of a bucket must map back to that bucket.
	for idx := 0; idx < histBuckets; idx++ {
		v := histValue(idx)
		if got := histIndex(v); got != idx {
			t.Fatalf("histIndex(histValue(%d)) = %d", idx, got)
		}
	}
	if histIndex(-5) != 0 {
		t.Errorf("negative values must clamp to bucket 0")
	}
}

func TestHistogramConcurrentObserveAndMerge(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	var m Histogram
	m.Observe(1 << 40)
	m.Merge(&h)
	if got := m.Count(); got != goroutines*per+1 {
		t.Fatalf("merged count = %d, want %d", got, goroutines*per+1)
	}
	if m.Max() < 1<<40 {
		t.Fatalf("merge lost max: %d", m.Max())
	}
}

func TestLatencyLine(t *testing.T) {
	var h Histogram
	h.Observe(1500)
	line := LatencyLine("ingest", h.Summary())
	if !strings.Contains(line, "ingest") || !strings.Contains(line, "n=1") {
		t.Fatalf("unexpected line: %q", line)
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	// Merging an empty histogram is a no-op in both directions.
	var a, empty Histogram
	a.Observe(7)
	a.Merge(&empty)
	if a.Count() != 1 || a.Sum() != 7 || a.Max() != 7 {
		t.Fatalf("merge of empty changed a: count=%d sum=%d max=%d", a.Count(), a.Sum(), a.Max())
	}
	var b Histogram
	b.Merge(&a)
	if b.Count() != 1 || b.Quantile(0.5) != 7 || b.Max() != 7 {
		t.Fatalf("empty.Merge(a): count=%d p50=%d max=%d", b.Count(), b.Quantile(0.5), b.Max())
	}

	// Single observation: every quantile collapses onto it, mean equals it.
	var single Histogram
	single.Observe(12)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != 12 {
			t.Errorf("single-observation Quantile(%v) = %d, want 12", q, got)
		}
	}
	if single.Mean() != 12 {
		t.Errorf("single-observation mean = %f, want 12", single.Mean())
	}

	// Disjoint octave ranges: low lives in the unit buckets, high several
	// octaves up. The merge must keep both populations distinguishable —
	// p25 stays in the low range, p75 in the high range — and max/sum/count
	// must be the exact totals.
	var low, high Histogram
	for i := int64(0); i < 100; i++ {
		low.Observe(i % histSubCount) // [0, 32)
		high.Observe(1 << 20)         // one sub-bucket near a megananosecond
	}
	low.Merge(&high)
	if low.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", low.Count())
	}
	if wantSum := high.Sum() + 100/histSubCount*(histSubCount*(histSubCount-1)/2) + (0 + 1 + 2 + 3); low.Sum() != wantSum {
		// 100 observations of i%32: three full cycles (0..31) plus 0..3 again.
		t.Fatalf("merged sum = %d, want %d", low.Sum(), wantSum)
	}
	if p25 := low.Quantile(0.25); p25 >= histSubCount {
		t.Errorf("merged p25 = %d, want a unit-bucket value < %d", p25, histSubCount)
	}
	p75 := low.Quantile(0.75)
	if rel := math.Abs(float64(p75)-float64(1<<20)) / float64(1<<20); rel > 0.04 {
		t.Errorf("merged p75 = %d, want within ~3%% of %d", p75, 1<<20)
	}
	if low.Max() != 1<<20 {
		t.Errorf("merged max = %d, want %d", low.Max(), 1<<20)
	}
}
