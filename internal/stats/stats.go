// Package stats provides the measurement and visualisation tooling around
// the engine: phase timers for the §6.3-style breakdowns, speedup tables
// for the Fig 8/11/12/13 sweeps, and DOT renderings of program dependency
// graphs and observed dataflow (Fig 7's blue-rectangle/red-circle views).
package stats

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/jstar-lang/jstar/internal/core"
)

// PhaseTimer accumulates named phase durations and reports each phase's
// share of the total, like the §6.3 breakdown (16.9% read / 63.7% insert /
// 3.8% delta / 15.6% reduce).
type PhaseTimer struct {
	names  []string
	totals map[string]time.Duration
}

// NewPhaseTimer returns an empty timer.
func NewPhaseTimer() *PhaseTimer {
	return &PhaseTimer{totals: make(map[string]time.Duration)}
}

// Add records d against phase name (registering it on first use).
func (p *PhaseTimer) Add(name string, d time.Duration) {
	if _, ok := p.totals[name]; !ok {
		p.names = append(p.names, name)
	}
	p.totals[name] += d
}

// Time runs fn, recording its duration against name.
func (p *PhaseTimer) Time(name string, fn func()) {
	start := time.Now()
	fn()
	p.Add(name, time.Since(start))
}

// Total returns the sum over all phases.
func (p *PhaseTimer) Total() time.Duration {
	var t time.Duration
	for _, d := range p.totals {
		t += d
	}
	return t
}

// Share returns phase name's fraction of the total (0 when empty).
func (p *PhaseTimer) Share(name string) float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.totals[name]) / float64(t)
}

// Report renders the percentage breakdown in registration order.
func (p *PhaseTimer) Report() string {
	var b strings.Builder
	total := p.Total()
	for _, n := range p.names {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(p.totals[n]) / float64(total)
		}
		fmt.Fprintf(&b, "%5.1f%%  %-28s %v\n", pct, n, p.totals[n].Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "total   %v\n", total.Round(time.Microsecond))
	return b.String()
}

// AmdahlMax computes the maximum speedup with the given serial fraction and
// worker count: 1 / (serial + (1-serial)/workers) — the paper's 4.2x bound
// for PvWatts with a single reader and 12 consumers.
func AmdahlMax(serialFraction float64, workers int) float64 {
	return 1 / (serialFraction + (1-serialFraction)/float64(workers))
}

// SpeedupRow is one point of a thread-sweep: the paper's Fig 8/11/12/13.
type SpeedupRow struct {
	Threads  int
	Elapsed  time.Duration
	Relative float64 // vs the 1-thread parallel build
	Absolute float64 // vs the best sequential build
}

// SpeedupTable computes relative and absolute speedups from a sweep.
// elapsed[i] is the time with threads[i] workers; seq is the sequential
// baseline time.
func SpeedupTable(threads []int, elapsed []time.Duration, seq time.Duration) []SpeedupRow {
	rows := make([]SpeedupRow, len(threads))
	var oneThread time.Duration
	for i, th := range threads {
		if th == 1 {
			oneThread = elapsed[i]
		}
	}
	if oneThread == 0 && len(elapsed) > 0 {
		oneThread = elapsed[0]
	}
	for i := range threads {
		rows[i] = SpeedupRow{
			Threads:  threads[i],
			Elapsed:  elapsed[i],
			Relative: float64(oneThread) / float64(elapsed[i]),
			Absolute: float64(seq) / float64(elapsed[i]),
		}
	}
	return rows
}

// FormatSpeedups renders a sweep as an aligned table.
func FormatSpeedups(rows []SpeedupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %14s %10s %10s\n", "threads", "time", "rel", "abs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %14v %9.2fx %9.2fx\n",
			r.Threads, r.Elapsed.Round(time.Microsecond), r.Relative, r.Absolute)
	}
	return b.String()
}

// ProgramDOT renders the static dependency graph of a program: tables as
// blue boxes, rules as red circles, edges trigger-table -> rule. Put edges
// come from the observed dataflow when a traced run is supplied.
func ProgramDOT(p *core.Program, run *core.Run) string {
	var b strings.Builder
	b.WriteString("digraph jstar {\n  rankdir=LR;\n")
	for _, s := range p.Tables() {
		fmt.Fprintf(&b, "  %q [shape=box, style=filled, fillcolor=lightblue];\n", s.Name)
	}
	for _, r := range p.Rules() {
		fmt.Fprintf(&b, "  %q [shape=ellipse, style=filled, fillcolor=lightcoral];\n", r.Name)
		fmt.Fprintf(&b, "  %q -> %q [style=bold];\n", r.Trigger.Name, r.Name)
	}
	if run != nil {
		for edge, n := range run.Stats().FlowEdges() {
			rule, table := edge[0], edge[1]
			if rule == "put" {
				fmt.Fprintf(&b, "  %q -> %q [label=\"init x%d\", style=dashed];\n", "start", table, n)
				continue
			}
			fmt.Fprintf(&b, "  %q -> %q [label=\"x%d\"];\n", rule, table, n)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// TableReport renders per-table usage counters from a run, sorted by name —
// the §1.5 "usage statistics about each table during a program run" — plus
// the store backend each table ran on and the kind the planner would pick
// for a re-run (blank when it has no opinion or agrees implicitly).
func TableReport(run *core.Run) string {
	st := run.Stats()
	plan := st.SuggestStorePlan()
	names := make([]string, 0, len(st.Tables))
	for n := range st.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "run: strategy=%s gomaxprocs=%d\n",
		run.StrategyName(), runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "%-16s %-16s %12s %12s %12s %12s  %s\n",
		"table", "store", "puts", "dups", "triggers", "queries", "suggested")
	for _, n := range names {
		t := st.Tables[n]
		fmt.Fprintf(&b, "%-16s %-16s %12d %12d %12d %12d  %s\n",
			n, st.StoreKinds[n], t.Puts.Load(), t.Duplicates.Load(),
			t.Triggers.Load(), t.Queries.Load(), plan[n])
	}
	fmt.Fprintf(&b, "steps=%d maxBatch=%d fired=%d elapsed=%v\n",
		st.Steps, st.MaxBatch, st.TotalFired, st.Elapsed.Round(time.Microsecond))
	b.WriteString(IngressLine(st))
	b.WriteString(PhaseLine(st))
	b.WriteString(AdaptiveLines(st))
	return b.String()
}

// AdaptiveLines renders an adaptive session's re-planning event log — one
// line per live store migration and per executor strategy switch, plus a
// summary of how many windows were evaluated. Empty for frozen runs
// (ReplanEvery unset and no explicit Session.Migrate calls).
func AdaptiveLines(st *core.RunStats) string {
	if st.Replans == 0 && len(st.Migrations) == 0 && len(st.StrategySwitches) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "adaptive: replans=%d migrations=%d strategy-switches=%d\n",
		st.Replans, len(st.Migrations), len(st.StrategySwitches))
	for _, m := range st.Migrations {
		fmt.Fprintf(&b, "  migrate q%-4d %-16s %s -> %s (%d tuples, %v)\n",
			m.Quiesce, m.Table, m.From, m.To, m.Tuples,
			time.Duration(m.Nanos).Round(time.Microsecond))
	}
	for _, sw := range st.StrategySwitches {
		fmt.Fprintf(&b, "  strategy q%-4d %s -> %s (window batch %.1f)\n",
			sw.Quiesce, sw.From, sw.To, sw.WindowBatch)
	}
	return b.String()
}

// IngressLine renders the session's ingestion spread — how many external
// events each ingress lane absorbed, plus the skew (max lane share over
// the perfectly balanced share). Empty for runs that never built an
// ingress (one-shot Execute) or absorbed nothing.
func IngressLine(st *core.RunStats) string {
	if st.IngressShards == 0 {
		return ""
	}
	var total, max int64
	for _, n := range st.ShardAbsorbed {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return ""
	}
	counts := make([]string, len(st.ShardAbsorbed))
	for i, n := range st.ShardAbsorbed {
		counts[i] = fmt.Sprintf("%d", n)
	}
	skew := float64(max) * float64(st.IngressShards) / float64(total)
	return fmt.Sprintf("ingress: shards=%d absorbed=[%s] skew=%.2f\n",
		st.IngressShards, strings.Join(counts, " "), skew)
}

// PhaseLine renders the per-phase step breakdown of a run — the §6.3-style
// fire/insert/merge/delta split, plus the serial-boundary fraction that
// Amdahl-caps parallel speedup. Empty when the run recorded no phases
// (e.g. a run that never stepped).
func PhaseLine(st *core.RunStats) string {
	if st.BoundaryNanos()+st.FireNanos == 0 {
		return ""
	}
	d := func(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }
	return fmt.Sprintf("phases: fire=%v insert=%v merge=%v delta=%v boundary=%.1f%%\n",
		d(st.FireNanos), d(st.InsertNanos), d(st.MergeNanos), d(st.DeltaNanos),
		100*st.SerialBoundaryFraction())
}
