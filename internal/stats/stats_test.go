package stats

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/tuple"
)

func TestPhaseTimer(t *testing.T) {
	p := NewPhaseTimer()
	p.Add("read", 169*time.Millisecond)
	p.Add("insert", 637*time.Millisecond)
	p.Add("delta", 38*time.Millisecond)
	p.Add("reduce", 156*time.Millisecond)
	if p.Total() != 1000*time.Millisecond {
		t.Errorf("total = %v", p.Total())
	}
	if math.Abs(p.Share("read")-0.169) > 1e-9 {
		t.Errorf("read share = %v", p.Share("read"))
	}
	rep := p.Report()
	if !strings.Contains(rep, "63.7%") || !strings.Contains(rep, "insert") {
		t.Errorf("report:\n%s", rep)
	}
	// Accumulation on an existing phase.
	p.Add("read", 31*time.Millisecond)
	if p.Share("read") <= 0.169 {
		t.Error("Add must accumulate")
	}
}

func TestPhaseTimerTimeAndEmpty(t *testing.T) {
	p := NewPhaseTimer()
	if p.Share("nothing") != 0 {
		t.Error("empty share")
	}
	p.Time("work", func() { time.Sleep(2 * time.Millisecond) })
	if p.Total() < 2*time.Millisecond {
		t.Errorf("timed phase = %v", p.Total())
	}
}

func TestAmdahlMax(t *testing.T) {
	// The paper's §6.3 bound: 16.9% serial, 12 consumers -> 4.2x.
	got := AmdahlMax(0.169, 12)
	if math.Abs(got-4.2) > 0.05 {
		t.Errorf("AmdahlMax(0.169, 12) = %v, want ~4.2", got)
	}
	if AmdahlMax(1, 100) != 1 {
		t.Error("fully serial program cannot speed up")
	}
	if AmdahlMax(0, 8) != 8 {
		t.Error("fully parallel program scales linearly")
	}
}

func TestSpeedupTable(t *testing.T) {
	threads := []int{1, 2, 4}
	elapsed := []time.Duration{800 * time.Millisecond, 400 * time.Millisecond, 250 * time.Millisecond}
	rows := SpeedupTable(threads, elapsed, 600*time.Millisecond)
	if rows[0].Relative != 1 {
		t.Errorf("relative at 1 thread = %v", rows[0].Relative)
	}
	if rows[1].Relative != 2 {
		t.Errorf("relative at 2 threads = %v", rows[1].Relative)
	}
	// Absolute speedup is against the sequential build: 600/400 = 1.5.
	if rows[1].Absolute != 1.5 {
		t.Errorf("absolute at 2 threads = %v", rows[1].Absolute)
	}
	// The Fig 8 effect: absolute < relative (concurrent structures cost).
	if rows[1].Absolute >= rows[1].Relative {
		t.Error("absolute speedup should trail relative speedup here")
	}
	out := FormatSpeedups(rows)
	if !strings.Contains(out, "threads") || !strings.Contains(out, "2.00x") {
		t.Errorf("format:\n%s", out)
	}
}

func traceRun(t *testing.T) (*core.Program, *core.Run) {
	t.Helper()
	p := core.NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("A")})
	b := p.Table("B", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("B")})
	p.Order("A", "B")
	p.Rule("ab", a, func(c *core.Ctx, tp *tuple.Tuple) {
		c.PutNew(b, tp.Get("v"))
	})
	p.Put(tuple.New(a, tuple.Int(1)))
	p.Put(tuple.New(a, tuple.Int(2)))
	run, err := p.Execute(core.Options{Sequential: true, TraceDataflow: true, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	return p, run
}

func TestProgramDOT(t *testing.T) {
	p, run := traceRun(t)
	dot := ProgramDOT(p, run)
	for _, want := range []string{
		"digraph jstar",
		`"A" [shape=box`,
		`"ab" [shape=ellipse`,
		`"A" -> "ab"`,
		`"ab" -> "B" [label="x2"]`,
		`"start" -> "A" [label="init x2"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Without a run: static graph only.
	static := ProgramDOT(p, nil)
	if strings.Contains(static, "init") {
		t.Error("static graph must not contain observed flow")
	}
}

func TestTableReport(t *testing.T) {
	_, run := traceRun(t)
	rep := TableReport(run)
	if !strings.Contains(rep, "table") || !strings.Contains(rep, "A") ||
		!strings.Contains(rep, "steps=") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestTableReportHeaderAndIngressLine(t *testing.T) {
	_, run := traceRun(t)
	rep := TableReport(run)
	if !strings.Contains(rep, "strategy=") || !strings.Contains(rep, "gomaxprocs=") {
		t.Errorf("report missing run header:\n%s", rep)
	}
	// A one-shot run never builds an ingress: no skew line.
	if strings.Contains(rep, "ingress:") {
		t.Errorf("one-shot run report shows an ingress line:\n%s", rep)
	}
	st := &core.RunStats{IngressShards: 4, ShardAbsorbed: []int64{10, 10, 20, 0}}
	line := IngressLine(st)
	if !strings.Contains(line, "shards=4") || !strings.Contains(line, "[10 10 20 0]") ||
		!strings.Contains(line, "skew=2.00") {
		t.Errorf("IngressLine = %q", line)
	}
	if IngressLine(&core.RunStats{}) != "" {
		t.Error("IngressLine must be empty without ingress")
	}
}

func TestAdaptiveLines(t *testing.T) {
	if AdaptiveLines(&core.RunStats{}) != "" {
		t.Error("AdaptiveLines must be empty for frozen runs")
	}
	st := &core.RunStats{
		Replans: 3,
		Migrations: []core.MigrationEvent{
			{Quiesce: 4, Table: "Reading", From: "tree", To: "inthash:1", Tuples: 800, Nanos: 1_500_000},
		},
		StrategySwitches: []core.StrategySwitch{
			{Quiesce: 6, From: "sequential", To: "forkjoin", WindowBatch: 512},
		},
	}
	lines := AdaptiveLines(st)
	if !strings.Contains(lines, "replans=3") ||
		!strings.Contains(lines, "Reading") || !strings.Contains(lines, "tree -> inthash:1") ||
		!strings.Contains(lines, "sequential -> forkjoin") {
		t.Errorf("AdaptiveLines = %q", lines)
	}
}

func TestIngressLineSkewWithIdleLane(t *testing.T) {
	// One lane never absorbs anything: the skew must still be computed over
	// the configured shard count (an idle lane is lost parallelism, not a
	// smaller denominator), and the zero must be visible in the lane list.
	st := &core.RunStats{IngressShards: 4, ShardAbsorbed: []int64{0, 30, 30, 30}}
	line := IngressLine(st)
	if !strings.Contains(line, "absorbed=[0 30 30 30]") {
		t.Errorf("idle lane not reported: %q", line)
	}
	if !strings.Contains(line, "skew=1.33") {
		t.Errorf("skew over 4 shards with a dead lane should be 30*4/90=1.33: %q", line)
	}
	// Degenerate pile-up: everything through one lane → skew == shard count.
	st = &core.RunStats{IngressShards: 4, ShardAbsorbed: []int64{0, 0, 50, 0}}
	if line := IngressLine(st); !strings.Contains(line, "skew=4.00") {
		t.Errorf("single-lane pile-up skew should equal shard count: %q", line)
	}
	// Shards configured but nothing absorbed yet: no line at all.
	st = &core.RunStats{IngressShards: 4, ShardAbsorbed: []int64{0, 0, 0, 0}}
	if line := IngressLine(st); line != "" {
		t.Errorf("no absorption must render nothing, got %q", line)
	}
}
