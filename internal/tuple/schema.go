package tuple

import (
	"fmt"
	"strings"
)

// OrderKind classifies one entry of a table's orderby list (paper §5).
type OrderKind uint8

const (
	// OrderLit is a capitalised literal name, ordered by the partial order
	// given by explicit `order A < B < C` declarations.
	OrderLit OrderKind = iota
	// OrderSeq is `seq field`: subtrees sorted sequentially by field value.
	OrderSeq
	// OrderPar is `par field`: subtrees unordered, so executable in parallel.
	OrderPar
)

// OrderEntry is one component of an orderby list: either a literal name or a
// (seq|par) reference to a column of the table.
type OrderEntry struct {
	Kind  OrderKind
	Lit   string // literal name when Kind == OrderLit
	Field string // column name when Kind == OrderSeq or OrderPar
}

// Seq returns a `seq field` orderby entry.
func Seq(field string) OrderEntry { return OrderEntry{Kind: OrderSeq, Field: field} }

// Par returns a `par field` orderby entry.
func Par(field string) OrderEntry { return OrderEntry{Kind: OrderPar, Field: field} }

// Lit returns a literal-name orderby entry.
func Lit(name string) OrderEntry { return OrderEntry{Kind: OrderLit, Lit: name} }

// String renders the entry in JStar surface syntax.
func (e OrderEntry) String() string {
	switch e.Kind {
	case OrderLit:
		return e.Lit
	case OrderSeq:
		return "seq " + e.Field
	case OrderPar:
		return "par " + e.Field
	}
	return "?"
}

// Column describes one field of a relation.
type Column struct {
	Name string
	Kind Kind
	Key  bool // part of the primary key (left of `->`)
}

// Schema describes a JStar relation: its name, columns, primary key, and
// orderby list. A Schema corresponds to one `table` declaration, e.g.
//
//	table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)
type Schema struct {
	Name    string
	Columns []Column
	OrderBy []OrderEntry

	index   map[string]int // column name -> position
	keyCols []int          // positions of primary-key columns
	obCols  []int          // column position per orderby entry, -1 for literals
	pathCol int            // first seq/par orderby column, -1 if all literals
	id      int32          // dense id assigned by the registry (engine)
}

// NewSchema builds and validates a schema. It returns an error if column
// names repeat, an orderby entry names an unknown column, or the orderby
// field is non-scalar.
func NewSchema(name string, cols []Column, orderBy []OrderEntry) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("jstar: table name must be non-empty")
	}
	s := &Schema{
		Name:    name,
		Columns: append([]Column(nil), cols...),
		OrderBy: append([]OrderEntry(nil), orderBy...),
		index:   make(map[string]int, len(cols)),
	}
	for i, c := range s.Columns {
		if c.Name == "" {
			return nil, fmt.Errorf("jstar: table %s: column %d has empty name", name, i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("jstar: table %s: duplicate column %q", name, c.Name)
		}
		if c.Kind == KindInvalid {
			return nil, fmt.Errorf("jstar: table %s: column %q has invalid kind", name, c.Name)
		}
		s.index[c.Name] = i
		if c.Key {
			s.keyCols = append(s.keyCols, i)
		}
	}
	s.obCols = make([]int, len(s.OrderBy))
	s.pathCol = -1
	for i, e := range s.OrderBy {
		switch e.Kind {
		case OrderLit:
			if e.Lit == "" {
				return nil, fmt.Errorf("jstar: table %s: empty literal in orderby", name)
			}
			s.obCols[i] = -1
		case OrderSeq, OrderPar:
			pos, ok := s.index[e.Field]
			if !ok {
				return nil, fmt.Errorf("jstar: table %s: orderby references unknown column %q", name, e.Field)
			}
			s.obCols[i] = pos
			if s.pathCol < 0 {
				s.pathCol = pos
			}
		}
	}
	return s, nil
}

// PathColumn returns the column position of the first seq/par orderby
// entry — the most significant data-dependent component of the table's
// Delta-tree path — or -1 when the orderby list is all literals. It keys
// the precomputed path sort key tuples carry for the step-boundary flush.
func (s *Schema) PathColumn() int { return s.pathCol }

// MustSchema is NewSchema that panics on error; for package-level tables.
func MustSchema(name string, cols []Column, orderBy []OrderEntry) *Schema {
	s, err := NewSchema(name, cols, orderBy)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// KeyColumns returns positions of the primary-key columns (may be empty).
func (s *Schema) KeyColumns() []int { return s.keyCols }

// HasPrimaryKey reports whether a `->` key was declared.
func (s *Schema) HasPrimaryKey() bool { return len(s.keyCols) > 0 }

// OrderByColumn returns the column position used by orderby entry i, or -1
// if that entry is a literal.
func (s *Schema) OrderByColumn(i int) int { return s.obCols[i] }

// SetID assigns the dense registry id; called once by the engine, at table
// declaration time — before any tuple of the schema exists, since tuples
// bake the id into their precomputed sort keys.
func (s *Schema) SetID(id int32) { s.id = id }

// ID returns the dense registry id (0 until registered).
func (s *Schema) ID() int32 { return s.id }

// String renders the schema as a JStar table declaration.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("table ")
	b.WriteString(s.Name)
	b.WriteByte('(')
	wroteArrow := false
	for i, c := range s.Columns {
		if i > 0 {
			if !wroteArrow && !c.Key && i > 0 && s.Columns[i-1].Key {
				b.WriteString(" -> ")
				wroteArrow = true
			} else {
				b.WriteString(", ")
			}
		}
		b.WriteString(c.Kind.String())
		b.WriteByte(' ')
		b.WriteString(c.Name)
	}
	b.WriteByte(')')
	if len(s.OrderBy) > 0 {
		b.WriteString(" orderby (")
		for i, e := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}
