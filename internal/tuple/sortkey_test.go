package tuple

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// TestFieldKey32OrderPreserving: for random same-kind value pairs, the
// 32-bit key prefix must never contradict Compare — key(a) < key(b) only
// when Compare(a, b) < 0. Ties are allowed (the comparators fall back).
func TestFieldKey32OrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mkInt := func() Value {
		switch rng.Intn(4) {
		case 0:
			return Int(int64(rng.Intn(2000) - 1000))
		case 1:
			return Int(rng.Int63() - rng.Int63())
		case 2:
			return Int(math.MinInt64 + int64(rng.Intn(3)))
		default:
			return Int(math.MaxInt64 - int64(rng.Intn(3)))
		}
	}
	mkFloat := func() Value {
		switch rng.Intn(6) {
		case 0:
			return Float(math.NaN())
		case 1:
			return Float(math.Inf(1 - 2*rng.Intn(2)))
		case 2:
			return Float(0 * float64(1-2*rng.Intn(2))) // ±0
		case 3:
			return Float((rng.Float64() - 0.5) * 1e-300)
		default:
			return Float((rng.Float64() - 0.5) * 1e6)
		}
	}
	mkStr := func() Value {
		n := rng.Intn(7)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(3))
		}
		return String_(string(b))
	}
	gens := map[string]func() Value{
		"int":    mkInt,
		"float":  mkFloat,
		"string": mkStr,
		"bool":   func() Value { return Bool(rng.Intn(2) == 0) },
	}
	for kind, gen := range gens {
		for i := 0; i < 20000; i++ {
			a, b := gen(), gen()
			ka, kb := fieldKey32(a), fieldKey32(b)
			c := Compare(a, b)
			if ka < kb && c >= 0 || ka > kb && c <= 0 {
				t.Fatalf("%s: key order contradicts Compare: %v (key %d) vs %v (key %d), Compare=%d",
					kind, a, ka, b, kb, c)
			}
		}
	}
}

// TestCompareSchemaFieldsMatchesLegacyOrder: the key-accelerated step
// comparator must order any batch exactly as the old closure (schema ID,
// then CompareFields) did — the byte-identical-firing-order contract.
func TestCompareSchemaFieldsMatchesLegacyOrder(t *testing.T) {
	sa := MustSchema("KA",
		[]Column{{Name: "x", Kind: KindInt}, {Name: "f", Kind: KindFloat}},
		[]OrderEntry{Lit("K")})
	sa.SetID(0)
	sb := MustSchema("KB",
		[]Column{{Name: "s", Kind: KindString}, {Name: "x", Kind: KindInt}},
		[]OrderEntry{Lit("K"), Seq("x")})
	sb.SetID(1)
	rng := rand.New(rand.NewSource(2))
	var ts []*Tuple
	for i := 0; i < 500; i++ {
		if rng.Intn(2) == 0 {
			ts = append(ts, New(sa,
				Int(int64(rng.Intn(40)-20)), Float(float64(rng.Intn(5)))))
		} else {
			ts = append(ts, New(sb,
				String_(string(rune('a'+rng.Intn(4)))), Int(int64(rng.Intn(40)-20))))
		}
	}
	legacy := append([]*Tuple(nil), ts...)
	sort.SliceStable(legacy, func(i, j int) bool {
		a, b := legacy[i], legacy[j]
		if a.Schema() != b.Schema() {
			return a.Schema().ID() < b.Schema().ID()
		}
		return a.CompareFields(b) < 0
	})
	keyed := append([]*Tuple(nil), ts...)
	slices.SortStableFunc(keyed, CompareSchemaFields)
	for i := range legacy {
		if legacy[i] != keyed[i] {
			// Equal-comparing tuples may permute; require value equality.
			if CompareSchemaFields(legacy[i], keyed[i]) != 0 {
				t.Fatalf("order diverges at %d: %v vs %v", i, keyed[i], legacy[i])
			}
		}
	}
}

// TestComparePathRefinesPathOrder: ComparePath must agree with the old
// pathLess ordering (schema, then seq/par orderby columns) wherever the
// latter was decisive, must be a total order, and must equate exactly the
// set-semantics duplicates.
func TestComparePathRefinesPathOrder(t *testing.T) {
	s := MustSchema("PK",
		[]Column{{Name: "v", Kind: KindInt}, {Name: "d", Kind: KindInt}},
		[]OrderEntry{Lit("P"), Seq("d")}) // path column is field 1
	s.SetID(3)
	rng := rand.New(rand.NewSource(4))
	var ts []*Tuple
	for i := 0; i < 400; i++ {
		ts = append(ts, New(s, Int(int64(rng.Intn(10))), Int(int64(rng.Intn(10)))))
	}
	for i := 0; i < 4000; i++ {
		a, b := ts[rng.Intn(len(ts))], ts[rng.Intn(len(ts))]
		pathC := Compare(a.Field(1), b.Field(1)) // old pathLess: orderby col only
		c := ComparePath(a, b)
		if pathC != 0 && keySign(c) != keySign(pathC) {
			t.Fatalf("ComparePath contradicts path order: %v vs %v: %d vs %d", a, b, c, pathC)
		}
		if c == 0 != a.Equal(b) {
			t.Fatalf("ComparePath==0 must coincide with Equal: %v vs %v (cmp=%d)", a, b, c)
		}
		if c != -ComparePath(b, a) {
			t.Fatalf("ComparePath not antisymmetric on %v vs %v", a, b)
		}
	}
}

func keySign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
