package tuple

import (
	"fmt"
	"strings"
)

// Tuple is one immutable row of a relation. The fields slice is owned by the
// tuple and must never be mutated after construction; the builder API and
// Copy make this convenient (paper §3: tuples are immutable Java objects).
type Tuple struct {
	schema *Schema
	fields []Value
	hash   uint64 // precomputed identity hash over schema name + fields
	// key and pathKey are precomputed 64-bit sort keys (schema ID in the
	// high half, an order-preserving 32-bit prefix of one field in the low
	// half) that let the engine's hot-path sorts resolve most comparisons
	// with one integer compare. key prefixes the step order (schema, then
	// fields); pathKey prefixes the Delta-tree path order (schema, then the
	// first seq/par orderby column). Key ties fall back to full comparisons.
	key     uint64
	pathKey uint64
}

// New constructs a tuple with positional field values. It panics if the
// arity or a field kind does not match the schema, mirroring the type errors
// the JStar compiler would reject statically.
func New(s *Schema, fields ...Value) *Tuple {
	if len(fields) != len(s.Columns) {
		panic(fmt.Sprintf("jstar: new %s: got %d fields, want %d", s.Name, len(fields), len(s.Columns)))
	}
	fs := make([]Value, len(fields))
	copy(fs, fields)
	for i, v := range fs {
		if !v.Valid() {
			fs[i] = Zero(s.Columns[i].Kind)
			continue
		}
		if v.Kind() != s.Columns[i].Kind {
			// Permit int literals in float columns (Java widening).
			if v.Kind() == KindInt && s.Columns[i].Kind == KindFloat {
				fs[i] = Float(float64(v.AsInt()))
				continue
			}
			panic(fmt.Sprintf("jstar: new %s: field %s is %v, want %v",
				s.Name, s.Columns[i].Name, v.Kind(), s.Columns[i].Kind))
		}
	}
	t := &Tuple{schema: s, fields: fs}
	t.hash = t.computeHash()
	t.computeKeys()
	return t
}

// computeKeys fills the precomputed sort keys from the (already
// normalised) fields. The schema half uses the dense registry ID, which is
// assigned at Program.Table time — before any tuple of the table exists.
func (t *Tuple) computeKeys() {
	hi := uint64(uint32(t.schema.id)) << 32
	if len(t.fields) > 0 {
		t.key = hi | uint64(fieldKey32(t.fields[0]))
	} else {
		t.key = hi
	}
	if c := t.schema.pathCol; c >= 0 {
		t.pathKey = hi | uint64(fieldKey32(t.fields[c]))
	} else {
		t.pathKey = hi
	}
}

func (t *Tuple) computeHash() uint64 {
	h := HashSeed
	for i := 0; i < len(t.schema.Name); i++ {
		h = hashByte(h, t.schema.Name[i])
	}
	for _, v := range t.fields {
		h = v.Hash(h)
	}
	return h
}

// Schema returns the tuple's relation schema.
func (t *Tuple) Schema() *Schema { return t.schema }

// Field returns the value at column position i.
func (t *Tuple) Field(i int) Value { return t.fields[i] }

// Get returns the value of the named column; it panics on unknown names
// (a static error in real JStar).
func (t *Tuple) Get(name string) Value {
	i := t.schema.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("jstar: table %s has no column %q", t.schema.Name, name))
	}
	return t.fields[i]
}

// Int is shorthand for Get(name).AsInt().
func (t *Tuple) Int(name string) int64 { return t.Get(name).AsInt() }

// Float is shorthand for Get(name).AsFloat().
func (t *Tuple) Float(name string) float64 { return t.Get(name).AsFloat() }

// Str is shorthand for Get(name).AsString().
func (t *Tuple) Str(name string) string { return t.Get(name).AsString() }

// Hash returns the precomputed identity hash (schema + all fields).
func (t *Tuple) Hash() uint64 { return t.hash }

// Equal reports whether two tuples are identical rows of the same relation.
// JStar has set-oriented semantics, so duplicates (by Equal) are discarded
// when inserted into the Delta set or a Gamma table.
func (t *Tuple) Equal(o *Tuple) bool {
	if t == o {
		return true
	}
	if o == nil || t.schema != o.schema || t.hash != o.hash {
		return false
	}
	for i := range t.fields {
		if !t.fields[i].Equal(o.fields[i]) {
			return false
		}
	}
	return true
}

// CompareFields orders tuples by their fields left to right; a tuple whose
// fields are a strict prefix of another's sorts first. Used as the total
// order inside NavigableSet Gamma stores, where schema-less probe tuples
// (NewRaw) carry only a query's equality prefix.
func (t *Tuple) CompareFields(o *Tuple) int {
	n := len(t.fields)
	if len(o.fields) < n {
		n = len(o.fields)
	}
	for i := 0; i < n; i++ {
		if c := Compare(t.fields[i], o.fields[i]); c != 0 {
			return c
		}
	}
	return len(t.fields) - len(o.fields)
}

// CompareSchemaFields is the engine's step order: schema identity (dense
// ID, then name as a tiebreak for unregistered schemas), then all fields
// left to right. It is the order BeginStep sorts each extracted batch into
// — schema-clustered for grouped Gamma inserts, field-ordered within a
// schema so sequential firing order is deterministic. The precomputed key
// resolves most comparisons with one integer compare.
func CompareSchemaFields(a, b *Tuple) int {
	if a.key != b.key {
		if a.key < b.key {
			return -1
		}
		return 1
	}
	if a.schema != b.schema {
		if c := compareSchemas(a.schema, b.schema); c != 0 {
			return c
		}
	}
	return a.CompareFields(b)
}

// ComparePath is the engine's flush order: schema identity, then the
// seq/par orderby columns in declaration order, then the precomputed
// identity hash, then all fields. It refines the Delta tree's path
// grouping to a total order, so a flush sorted by it descends the tree
// with maximal spine reuse, and two tuples comparing equal are exactly
// the set-semantics duplicates (same schema, same fields) that merge-time
// dedup may drop. The hash stage is the cheap discriminator: once the
// path components tie (always, for all-literal orderby lists), one
// integer compare separates almost every non-duplicate pair, so the full
// field walk runs only for true duplicates and hash collisions.
func ComparePath(a, b *Tuple) int {
	if a.pathKey != b.pathKey {
		if a.pathKey < b.pathKey {
			return -1
		}
		return 1
	}
	sa, sb := a.schema, b.schema
	if sa != sb {
		if c := compareSchemas(sa, sb); c != 0 {
			return c
		}
		// Distinct schema objects that tie on ID and name (tuples from
		// unrelated Programs mixed in one sort): field order only — the
		// orderby lists may disagree structurally.
		return a.CompareFields(b)
	}
	if sa != nil {
		for i, e := range sa.OrderBy {
			if e.Kind == OrderLit {
				continue // constant across the schema's tuples
			}
			col := sa.obCols[i]
			if c := Compare(a.fields[col], b.fields[col]); c != 0 {
				return c
			}
		}
	}
	if a.hash != b.hash {
		if a.hash < b.hash {
			return -1
		}
		return 1
	}
	return a.CompareFields(b)
}

// compareSchemas orders distinct schemas by dense ID, then name — a
// deterministic tiebreak for schemas never registered with a Program.
func compareSchemas(a, b *Schema) int {
	if a == nil || b == nil {
		if a == b {
			return 0
		}
		if a == nil {
			return -1
		}
		return 1
	}
	if a.id != b.id {
		if a.id < b.id {
			return -1
		}
		return 1
	}
	return strings.Compare(a.Name, b.Name)
}

// NewRaw builds a schema-less probe tuple holding just the given fields.
// Probes exist only to position range scans inside ordered stores — they
// must never be inserted into tables (Schema() is nil).
func NewRaw(fields []Value) *Tuple {
	fs := make([]Value, len(fields))
	copy(fs, fields)
	h := HashSeed
	for _, v := range fs {
		h = v.Hash(h)
	}
	return &Tuple{fields: fs, hash: h}
}

// KeyEqual reports whether two tuples agree on the primary-key columns.
func (t *Tuple) KeyEqual(o *Tuple) bool {
	if t.schema != o.schema {
		return false
	}
	for _, i := range t.schema.keyCols {
		if !t.fields[i].Equal(o.fields[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as Name(v1, v2, ...).
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteString(t.schema.Name)
	b.WriteByte('(')
	for i, v := range t.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Builder accumulates field values by name and produces an immutable Tuple,
// mirroring the generated builder classes of JStar ("by name" construction
// and the copy method, paper §3).
type Builder struct {
	schema *Schema
	fields []Value
}

// NewBuilder returns a builder with all fields defaulted to their zero
// values ("use default values for frame and dy").
func NewBuilder(s *Schema) *Builder {
	b := &Builder{schema: s, fields: make([]Value, len(s.Columns))}
	for i, c := range s.Columns {
		b.fields[i] = Zero(c.Kind)
	}
	return b
}

// CopyOf returns a builder pre-populated from an existing tuple, so a rule
// can "update a few fields and create a new tuple".
func CopyOf(t *Tuple) *Builder {
	b := &Builder{schema: t.schema, fields: make([]Value, len(t.fields))}
	copy(b.fields, t.fields)
	return b
}

// Set assigns a field by name and returns the builder for chaining.
func (b *Builder) Set(name string, v Value) *Builder {
	i := b.schema.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("jstar: table %s has no column %q", b.schema.Name, name))
	}
	b.fields[i] = v
	return b
}

// SetInt assigns an int field by name.
func (b *Builder) SetInt(name string, v int64) *Builder { return b.Set(name, Int(v)) }

// SetFloat assigns a float field by name.
func (b *Builder) SetFloat(name string, v float64) *Builder { return b.Set(name, Float(v)) }

// SetString assigns a string field by name.
func (b *Builder) SetString(name string, v string) *Builder { return b.Set(name, String_(v)) }

// SetBool assigns a bool field by name.
func (b *Builder) SetBool(name string, v bool) *Builder { return b.Set(name, Bool(v)) }

// Build produces the immutable tuple.
func (b *Builder) Build() *Tuple { return New(b.schema, b.fields...) }
