package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func shipSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("Ship",
		[]Column{
			{Name: "frame", Kind: KindInt, Key: true},
			{Name: "x", Kind: KindInt},
			{Name: "y", Kind: KindInt},
			{Name: "dx", Kind: KindInt},
			{Name: "dy", Kind: KindInt},
		},
		[]OrderEntry{Lit("Int"), Seq("frame")},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int(7), KindInt},
		{Float(3.5), KindFloat},
		{String_("hi"), KindString},
		{Bool(true), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if !c.v.Valid() {
			t.Errorf("%v: not valid", c.v)
		}
	}
	var zero Value
	if zero.Valid() {
		t.Error("zero Value should be invalid")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Error("AsInt")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("AsFloat should widen ints")
	}
	if String_("a").AsString() != "a" {
		t.Error("AsString")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { String_("x").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsBool on int", func() { Int(1).AsBool() })
	mustPanic("AsFloat on bool", func() { Bool(true).AsFloat() })
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Int(1), Float(1.5), -1}, // mixed numeric widening
		{Float(0.5), Int(1), -1},
		{Int(2), Float(2.0), 0},
		{String_("a"), String_("b"), -1},
		{Bool(false), Bool(true), -1},
		{Value{}, Int(0), -1}, // invalid sorts first
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); sign(got) != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestValueCompareNaN(t *testing.T) {
	nan := Float(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN == NaN in total order")
	}
	if Compare(nan, Float(-1e300)) != -1 {
		t.Error("NaN must sort before all floats")
	}
	if !nan.Equal(nan) {
		t.Error("NaN must equal NaN for dedup")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestValueEqualExact(t *testing.T) {
	if Int(2).Equal(Float(2.0)) {
		t.Error("Equal must be exact across kinds (dedup is exact)")
	}
	if !Int(2).Equal(Int(2)) || Int(2).Equal(Int(3)) {
		t.Error("int equality")
	}
	if !String_("x").Equal(String_("x")) {
		t.Error("string equality")
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Compare must be antisymmetric and transitive over a mixed population.
	vals := func(x int64, f float64, s string, b bool, pick uint8) Value {
		switch pick % 4 {
		case 0:
			return Int(x)
		case 1:
			return Float(f)
		case 2:
			return String_(s)
		default:
			return Bool(b)
		}
	}
	anti := func(x1 int64, f1 float64, s1 string, b1 bool, p1 uint8,
		x2 int64, f2 float64, s2 string, b2 bool, p2 uint8) bool {
		a := vals(x1, f1, s1, b1, p1)
		b := vals(x2, f2, s2, b2, p2)
		return sign(Compare(a, b)) == -sign(Compare(b, a))
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", nil, nil); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewSchema("T", []Column{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}, nil); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewSchema("T", []Column{{Name: "a", Kind: KindInt}}, []OrderEntry{Seq("missing")}); err == nil {
		t.Error("orderby of unknown column should fail")
	}
	if _, err := NewSchema("T", []Column{{Name: "a", Kind: KindInvalid}}, nil); err == nil {
		t.Error("invalid kind should fail")
	}
	if _, err := NewSchema("T", []Column{{Name: "", Kind: KindInt}}, nil); err == nil {
		t.Error("empty column name should fail")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := shipSchema(t)
	if s.Arity() != 5 {
		t.Errorf("arity = %d", s.Arity())
	}
	if s.ColumnIndex("dx") != 3 {
		t.Errorf("ColumnIndex(dx) = %d", s.ColumnIndex("dx"))
	}
	if s.ColumnIndex("nope") != -1 {
		t.Error("unknown column should be -1")
	}
	if !s.HasPrimaryKey() || len(s.KeyColumns()) != 1 || s.KeyColumns()[0] != 0 {
		t.Errorf("key columns = %v", s.KeyColumns())
	}
	if s.OrderByColumn(0) != -1 {
		t.Error("literal entry should map to -1")
	}
	if s.OrderByColumn(1) != 0 {
		t.Error("seq frame should map to column 0")
	}
}

func TestSchemaString(t *testing.T) {
	s := shipSchema(t)
	want := "table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTupleConstructionAndAccess(t *testing.T) {
	s := shipSchema(t)
	ship := New(s, Int(0), Int(10), Int(10), Int(150), Int(0))
	if ship.Int("frame") != 0 || ship.Int("dx") != 150 {
		t.Error("field access by name")
	}
	if ship.Field(1).AsInt() != 10 {
		t.Error("field access by position")
	}
	if got := ship.String(); got != "Ship(0, 10, 10, 150, 0)" {
		t.Errorf("String() = %q", got)
	}
}

func TestTupleArityPanic(t *testing.T) {
	s := shipSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("expected arity panic")
		}
	}()
	New(s, Int(0))
}

func TestTupleKindPanic(t *testing.T) {
	s := shipSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("expected kind panic")
		}
	}()
	New(s, String_("oops"), Int(0), Int(0), Int(0), Int(0))
}

func TestTupleIntWidensToFloat(t *testing.T) {
	s := MustSchema("P", []Column{{Name: "v", Kind: KindFloat}}, nil)
	p := New(s, Int(3))
	if p.Float("v") != 3.0 {
		t.Error("int literal should widen into float column")
	}
}

func TestTupleEqualAndHash(t *testing.T) {
	s := shipSchema(t)
	a := New(s, Int(0), Int(10), Int(10), Int(150), Int(0))
	b := New(s, Int(0), Int(10), Int(10), Int(150), Int(0))
	c := New(s, Int(1), Int(10), Int(10), Int(150), Int(0))
	if !a.Equal(b) {
		t.Error("identical tuples must be Equal")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal tuples must hash the same")
	}
	if a.Equal(c) {
		t.Error("different tuples must not be Equal")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil)")
	}
	other := MustSchema("Other", []Column{
		{Name: "frame", Kind: KindInt}, {Name: "x", Kind: KindInt},
		{Name: "y", Kind: KindInt}, {Name: "dx", Kind: KindInt}, {Name: "dy", Kind: KindInt},
	}, nil)
	d := New(other, Int(0), Int(10), Int(10), Int(150), Int(0))
	if a.Equal(d) {
		t.Error("same fields in different tables are different tuples")
	}
}

func TestTupleHashDistribution(t *testing.T) {
	// Different single-field values should essentially never collide.
	s := MustSchema("N", []Column{{Name: "v", Kind: KindInt}}, nil)
	seen := make(map[uint64]bool)
	for i := int64(0); i < 10000; i++ {
		h := New(s, Int(i)).Hash()
		if seen[h] {
			t.Fatalf("hash collision at %d", i)
		}
		seen[h] = true
	}
}

func TestTupleCompareFields(t *testing.T) {
	s := shipSchema(t)
	a := New(s, Int(0), Int(10), Int(10), Int(150), Int(0))
	b := New(s, Int(0), Int(11), Int(10), Int(150), Int(0))
	if a.CompareFields(b) >= 0 || b.CompareFields(a) <= 0 {
		t.Error("CompareFields ordering")
	}
	if a.CompareFields(a) != 0 {
		t.Error("CompareFields reflexive")
	}
}

func TestTupleKeyEqual(t *testing.T) {
	s := shipSchema(t)
	a := New(s, Int(3), Int(1), Int(1), Int(0), Int(0))
	b := New(s, Int(3), Int(99), Int(99), Int(9), Int(9))
	c := New(s, Int(4), Int(1), Int(1), Int(0), Int(0))
	if !a.KeyEqual(b) {
		t.Error("same frame should be key-equal")
	}
	if a.KeyEqual(c) {
		t.Error("different frame should not be key-equal")
	}
}

func TestBuilderDefaultsAndCopy(t *testing.T) {
	s := shipSchema(t)
	// new Ship() [x=10; dx=150; y=10] — defaults for frame and dy.
	ship := NewBuilder(s).SetInt("x", 10).SetInt("dx", 150).SetInt("y", 10).Build()
	if ship.Int("frame") != 0 || ship.Int("dy") != 0 {
		t.Error("builder defaults")
	}
	if ship.Int("x") != 10 {
		t.Error("builder set")
	}
	// Copy method: take an existing tuple, update a few fields.
	moved := CopyOf(ship).SetInt("frame", 1).SetInt("x", 160).Build()
	if moved.Int("frame") != 1 || moved.Int("x") != 160 || moved.Int("dx") != 150 {
		t.Error("copy-update")
	}
	if ship.Int("frame") != 0 {
		t.Error("original must be unchanged (immutability)")
	}
}

func TestBuilderUnknownFieldPanics(t *testing.T) {
	s := shipSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(s).SetInt("bogus", 1)
}

func TestBuilderTypedSetters(t *testing.T) {
	s := MustSchema("Mix", []Column{
		{Name: "i", Kind: KindInt},
		{Name: "f", Kind: KindFloat},
		{Name: "s", Kind: KindString},
		{Name: "b", Kind: KindBool},
	}, nil)
	m := NewBuilder(s).SetInt("i", 1).SetFloat("f", 2.5).SetString("s", "x").SetBool("b", true).Build()
	if m.Int("i") != 1 || m.Float("f") != 2.5 || m.Str("s") != "x" || !m.Get("b").AsBool() {
		t.Error("typed setters")
	}
}

func TestZeroValues(t *testing.T) {
	if Zero(KindInt).AsInt() != 0 || Zero(KindFloat).AsFloat() != 0 ||
		Zero(KindString).AsString() != "" || Zero(KindBool).AsBool() {
		t.Error("zero values")
	}
	if Zero(KindInvalid).Valid() {
		t.Error("Zero(invalid) should be invalid")
	}
}

func TestOrderEntryString(t *testing.T) {
	if Lit("Int").String() != "Int" || Seq("frame").String() != "seq frame" || Par("x").String() != "par x" {
		t.Error("OrderEntry.String")
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindFloat.String() != "double" ||
		KindString.String() != "String" || KindBool.String() != "boolean" || KindInvalid.String() != "invalid" {
		t.Error("Kind.String")
	}
}
