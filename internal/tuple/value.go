// Package tuple defines the immutable data model of JStar: typed Values,
// relation Schemas with orderby lists, and Tuples (immutable rows).
//
// Everything a JStar program computes is a tuple in some relation. Tuples are
// never mutated after construction; "updating" data means putting a new tuple
// with a later timestamp (see the law of causality, paper §4).
package tuple

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the primitive column types supported by JStar relations.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindInt          // 64-bit signed integer
	KindFloat        // 64-bit IEEE float
	KindString       // immutable string
	KindBool         // boolean
)

// String returns the JStar surface-syntax name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "double"
	case KindString:
		return "String"
	case KindBool:
		return "boolean"
	default:
		return "invalid"
	}
}

// Value is an immutable tagged union holding one column value.
// The zero Value has KindInvalid and compares before every valid value.
type Value struct {
	kind Kind
	i    int64 // int, bool (0/1)
	f    float64
	s    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point Value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string Value. (Named with a trailing underscore because
// String is reserved for fmt.Stringer.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean Value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload. It panics if the value is not an int,
// mirroring a failed cast in the generated Java code.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("jstar: value %v is not int", v))
	}
	return v.i
}

// AsFloat returns the float payload, widening ints (JStar follows Java's
// implicit numeric widening in expressions).
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("jstar: value %v is not numeric", v))
}

// AsString returns the string payload; it panics for non-strings.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("jstar: value %v is not String", v))
	}
	return v.s
}

// AsBool returns the boolean payload; it panics for non-booleans.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("jstar: value %v is not boolean", v))
	}
	return v.i != 0
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Valid reports whether the value holds a real payload.
func (v Value) Valid() bool { return v.kind != KindInvalid }

// Compare orders two values. Invalid < everything; mixed numeric kinds are
// compared numerically (int widened to float); otherwise kinds must match.
// Bools order false < true. NaN sorts before all other floats so that
// ordering is total (required by the Delta tree and NavigableSet stores).
func Compare(a, b Value) int {
	if a.kind == KindInvalid || b.kind == KindInvalid {
		return int(boolToInt(a.kind != KindInvalid)) - int(boolToInt(b.kind != KindInvalid))
	}
	if a.IsNumeric() && b.IsNumeric() && a.kind != b.kind {
		return compareFloat(a.AsFloat(), b.AsFloat())
	}
	if a.kind != b.kind {
		// Total order across kinds: by kind tag. Heterogeneous comparisons
		// only arise in the Delta tree when distinct tables share a level.
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindInt, KindBool:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindFloat:
		return compareFloat(a.f, b.f)
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	}
	return 0
}

func compareFloat(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func boolToInt(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Equal reports exact equality (same kind, same payload). Unlike Compare it
// never treats an int and float as equal, so tuple dedup is exact.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	default:
		return v.i == o.i
	}
}

// Hash folds the value into an FNV-1a style 64-bit hash seed.
func (v Value) Hash(h uint64) uint64 {
	h = hashByte(h, byte(v.kind))
	switch v.kind {
	case KindString:
		for i := 0; i < len(v.s); i++ {
			h = hashByte(h, v.s[i])
		}
	case KindFloat:
		bits := math.Float64bits(v.f)
		for i := 0; i < 8; i++ {
			h = hashByte(h, byte(bits>>(8*i)))
		}
	default:
		u := uint64(v.i)
		for i := 0; i < 8; i++ {
			h = hashByte(h, byte(u>>(8*i)))
		}
	}
	return h
}

// fieldKey32 encodes v as an order-preserving (but non-injective) 32-bit
// prefix: for values of one kind, fieldKey32(a) < fieldKey32(b) implies
// Compare(a, b) < 0, so a 64-bit sort key can resolve most comparisons
// without touching the Value — key ties fall back to the full comparator.
// Columns have a fixed kind, so cross-kind consistency is not required.
func fieldKey32(v Value) uint32 {
	switch v.kind {
	case KindInt:
		// Exact biased encoding for the common 32-bit range; out-of-range
		// values clamp (clamped neighbours tie and fall back).
		const lo = -1 << 31
		if v.i < lo {
			return 0
		}
		if v.i > 1<<31-1 {
			return ^uint32(0)
		}
		return uint32(v.i - lo)
	case KindBool:
		return uint32(v.i)
	case KindFloat:
		if math.IsNaN(v.f) {
			return 0 // NaN sorts before all other floats (Compare's rule)
		}
		if v.f == 0 {
			v.f = 0 // normalise -0.0: Compare treats the zeros as equal
		}
		bits := math.Float64bits(v.f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip all so magnitude order reverses
		} else {
			bits |= 1 << 63 // positive: set sign so it sorts after negatives
		}
		return uint32(bits >> 32)
	case KindString:
		var k uint32
		for i := 0; i < 4; i++ {
			k <<= 8
			if i < len(v.s) {
				k |= uint32(v.s[i])
			}
		}
		return k
	}
	return 0 // invalid sorts before every valid value
}

const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

// HashSeed is the initial seed for Value.Hash chains.
const HashSeed uint64 = fnvOffset

// String renders the value in JStar literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// Zero returns the default value for a kind, used when a builder omits a
// field ("use default values for frame and dy", paper §3).
func Zero(k Kind) Value {
	switch k {
	case KindInt:
		return Int(0)
	case KindFloat:
		return Float(0)
	case KindString:
		return String_("")
	case KindBool:
		return Bool(false)
	default:
		return Value{}
	}
}
