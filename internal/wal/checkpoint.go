package wal

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// Checkpoint is a full Gamma snapshot covering every external tuple with
// sequence <= Seq. Recovery loads the newest valid checkpoint and replays
// only the WAL tail beyond it.
type Checkpoint struct {
	Seq      uint64
	Identity string
	Tables   []CheckpointTable
}

// CheckpointTable is one table's rows, drained in CompareFields order (the
// same drain ordering DB.Migrate uses), so checkpoint bytes are
// deterministic for a given quiesced state.
type CheckpointTable struct {
	Name string
	Rows []*tuple.Tuple
}

// Tuples returns the total row count across tables.
func (c *Checkpoint) Tuples() int {
	n := 0
	for _, t := range c.Tables {
		n += len(t.Rows)
	}
	return n
}

func encodeCheckpoint(c *Checkpoint) ([]byte, error) {
	p := []byte(ckptMagic)
	p = binary.LittleEndian.AppendUint16(p, walVersion)
	p = binary.LittleEndian.AppendUint64(p, c.Seq)
	p = appendString(p, c.Identity)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(c.Tables)))
	for _, t := range c.Tables {
		p = appendString(p, t.Name)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(t.Rows)))
		for _, r := range t.Rows {
			sch := r.Schema()
			if sch == nil || sch.Name != t.Name {
				return nil, fmt.Errorf("wal: checkpoint row of %s has schema %v", t.Name, sch)
			}
			var err error
			if p, err = appendFields(p, r, sch); err != nil {
				return nil, err
			}
		}
	}
	return appendFrame(nil, p), nil
}

func decodeCheckpoint(buf []byte, resolve Resolver) (*Checkpoint, error) {
	p, next, ok := readFrame(buf, 0)
	if !ok || next != int64(len(buf)) {
		return nil, fmt.Errorf("wal: checkpoint frame invalid or trailing bytes")
	}
	if len(p) < len(ckptMagic)+10 || string(p[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("wal: not a checkpoint file")
	}
	p = p[len(ckptMagic):]
	if v := binary.LittleEndian.Uint16(p); v != walVersion {
		return nil, fmt.Errorf("wal: unsupported checkpoint version %d", v)
	}
	p = p[2:]
	c := &Checkpoint{Seq: binary.LittleEndian.Uint64(p)}
	p = p[8:]
	var err error
	if c.Identity, p, err = takeString(p); err != nil {
		return nil, err
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("wal: truncated checkpoint table count")
	}
	nTables := binary.LittleEndian.Uint32(p)
	p = p[4:]
	for i := uint32(0); i < nTables; i++ {
		var name string
		if name, p, err = takeString(p); err != nil {
			return nil, err
		}
		sch := resolve(name)
		if sch == nil {
			return nil, fmt.Errorf("wal: checkpoint table %q not declared on this program", name)
		}
		if len(p) < 4 {
			return nil, fmt.Errorf("wal: truncated row count for %s", name)
		}
		rows := binary.LittleEndian.Uint32(p)
		p = p[4:]
		ct := CheckpointTable{Name: name, Rows: make([]*tuple.Tuple, 0, rows)}
		for j := uint32(0); j < rows; j++ {
			var t *tuple.Tuple
			if t, p, err = parseFields(p, sch); err != nil {
				return nil, fmt.Errorf("wal: checkpoint %s row %d: %w", name, j, err)
			}
			ct.Rows = append(ct.Rows, t)
		}
		c.Tables = append(c.Tables, ct)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after checkpoint tables", len(p))
	}
	return c, nil
}

// WriteCheckpoint publishes a checkpoint atomically: fully written and
// fsynced under a temp name, then renamed into place, so a crash at any
// point leaves either the old set of checkpoints or the new one — never a
// half-written file with a valid name. Keeps the two newest checkpoints
// and prunes the rest.
//
// The caller must have Flushed the log through c.Seq first: a checkpoint
// may never claim coverage the WAL cannot back.
func (l *Log) WriteCheckpoint(c *Checkpoint) error {
	if c.Identity == "" {
		c.Identity = l.opts.Identity
	}
	if d := l.DurableSeq(); c.Seq > d {
		return fmt.Errorf("wal: checkpoint seq %d exceeds durable seq %d", c.Seq, d)
	}
	buf, err := encodeCheckpoint(c)
	if err != nil {
		return err
	}
	final := ckptName(c.Seq)
	tmp := final + ".tmp"
	f, err := l.fs.OpenAppend(tmp)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", tmp, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", tmp, err)
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publish %s: %w", final, err)
	}
	l.pruneCheckpoints(c.Seq)
	l.mu.Lock()
	l.stats.CheckpointSeq = c.Seq
	l.stats.LastCheckpoint = time.Now()
	l.mu.Unlock()
	return nil
}

// pruneCheckpoints removes all but the two newest checkpoints (keeping a
// fallback in case the newest is later found damaged).
func (l *Log) pruneCheckpoints(newest uint64) {
	names, err := l.fs.List()
	if err != nil {
		return
	}
	var seqs []uint64
	for _, n := range names {
		if s, ok := parseCkptName(n); ok && s != newest {
			seqs = append(seqs, s)
		}
	}
	if len(seqs) <= 1 {
		return
	}
	// seqs is ascending (List sorts names; fixed-width hex sorts by value).
	for _, s := range seqs[:len(seqs)-1] {
		_ = l.fs.Remove(ckptName(s))
	}
}
