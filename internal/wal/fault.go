package wal

import (
	"fmt"
	"sort"
	"sync"
)

// MemFS is an in-memory FS that distinguishes durable bytes (survived an
// fsync) from volatile bytes (written but not yet synced) — the property a
// crash-fault harness needs to simulate power loss precisely. It is also
// handy for WAL-enabled tests and benchmarks that should not touch disk.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	durable  []byte // survives a simulated power cut
	volatile []byte // written, not yet synced; lost on power cut
}

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

func (m *MemFS) file(name string) *memFile {
	f := m.files[name]
	if f == nil {
		f = &memFile{}
		m.files[name] = f
	}
	return f
}

type memHandle struct {
	fs   *MemFS
	name string
}

func (h *memHandle) Write(p []byte) (int, error) { return h.fs.write(h.name, p) }
func (h *memHandle) Sync() error                 { return h.fs.sync(h.name) }
func (h *memHandle) Close() error                { return nil }

func (m *MemFS) write(name string, p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.file(name)
	f.volatile = append(f.volatile, p...)
	return len(p), nil
}

func (m *MemFS) sync(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.file(name)
	f.durable = append(f.durable, f.volatile...)
	f.volatile = nil
	return nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	m.file(name)
	m.mu.Unlock()
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: memfs: no file %q", name)
	}
	out := make([]byte, 0, len(f.durable)+len(f.volatile))
	out = append(out, f.durable...)
	return append(out, f.volatile...), nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("wal: memfs: no file %q", name)
	}
	total := int64(len(f.durable) + len(f.volatile))
	if size >= total {
		return nil
	}
	if size <= int64(len(f.durable)) {
		f.durable = f.durable[:size]
		f.volatile = nil
		return nil
	}
	f.volatile = f.volatile[:size-int64(len(f.durable))]
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("wal: memfs: no file %q", oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("wal: memfs: no file %q", name)
	}
	delete(m.files, name)
	return nil
}

// durableClone returns a new MemFS holding only the durable bytes — the
// state a machine reboots with after losing power.
func (m *MemFS) durableClone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		out.files[name] = &memFile{durable: append([]byte(nil), f.durable...)}
	}
	return out
}

// FaultFS is the crash-fault injection harness: a MemFS whose writes and
// fsyncs can be made to fail in the ways real storage fails. A test arms
// one fault, drives the log until the fault fires (the simulated power
// loss), then recovers from Durable() — the bytes a rebooted machine
// would see — and asserts the recovery property: a quiesced state equal
// to the uncrashed run's covering prefix, or a loud, located error.
//
// Faults (all 1-based ordinals, 0 = disarmed):
//
//   - CrashAtSync(n): power dies as the nth fsync begins — everything
//     volatile at that point is lost.
//   - FailSync(n): the nth fsync returns an I/O error without killing the
//     process (a dying disk); the log must surface it loudly.
//   - TearWrite(n, keep): power dies during the nth write; only its first
//     keep bytes reach the medium (a torn record).
//   - DropWrite(n): the nth write is acknowledged but never reaches the
//     medium before power dies (a lying drive cache).
//   - FlipBit(name, off): flips one bit of already-durable content — the
//     historical tamper the segment hash chain must reject.
type FaultFS struct {
	mem *MemFS

	mu      sync.Mutex
	syncs   int
	writes  int
	crashAt int
	failAt  int
	tearAt  int
	tearN   int
	dropAt  int
	crashed bool
}

// NewFaultFS returns a FaultFS with no fault armed.
func NewFaultFS() *FaultFS { return &FaultFS{mem: NewMemFS()} }

// CrashAtSync arms a power loss at the nth fsync (1-based).
func (f *FaultFS) CrashAtSync(n int) { f.mu.Lock(); f.crashAt = n; f.mu.Unlock() }

// FailSync makes the nth fsync return an error without crashing.
func (f *FaultFS) FailSync(n int) { f.mu.Lock(); f.failAt = n; f.mu.Unlock() }

// TearWrite arms a power loss during the nth write, keeping its first
// keep bytes.
func (f *FaultFS) TearWrite(n, keep int) { f.mu.Lock(); f.tearAt, f.tearN = n, keep; f.mu.Unlock() }

// DropWrite arms a power loss after the nth write is acknowledged but
// before it reaches the medium.
func (f *FaultFS) DropWrite(n int) { f.mu.Lock(); f.dropAt = n; f.mu.Unlock() }

// Crashed reports whether the armed fault has fired.
func (f *FaultFS) Crashed() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.crashed }

// Syncs returns how many fsyncs have been observed — tests sweep crash
// points by first counting a clean run's syncs.
func (f *FaultFS) Syncs() int { f.mu.Lock(); defer f.mu.Unlock(); return f.syncs }

// Durable returns the power-loss view: a fresh FS holding only bytes that
// were durably synced (plus any surviving torn prefix) when the fault
// fired. Recover from it as a rebooted process would.
func (f *FaultFS) Durable() *MemFS { return f.mem.durableClone() }

// FlipBit flips one bit of name's durable content at byte offset off —
// post-hoc tampering with a sealed segment.
func (f *FaultFS) FlipBit(name string, off int64) error {
	f.mem.mu.Lock()
	defer f.mem.mu.Unlock()
	mf, ok := f.mem.files[name]
	if !ok || off < 0 || off >= int64(len(mf.durable)) {
		return fmt.Errorf("wal: flip bit: no durable byte %d in %q", off, name)
	}
	mf.durable[off] ^= 0x40
	return nil
}

type faultHandle struct {
	fs   *FaultFS
	name string
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	if _, err := f.mem.OpenAppend(name); err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, name: name}, nil
}

func (h *faultHandle) Write(p []byte) (int, error) {
	f := h.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	f.writes++
	if f.tearAt > 0 && f.writes == f.tearAt {
		keep := f.tearN
		if keep > len(p) {
			keep = len(p)
		}
		f.crashed = true
		f.mu.Unlock()
		// The torn prefix reached the medium: it must survive the cut, so
		// write it straight to the durable image.
		f.mem.mu.Lock()
		mf := f.mem.file(h.name)
		mf.durable = append(mf.durable, p[:keep]...)
		f.mem.mu.Unlock()
		return 0, ErrCrashed
	}
	if f.dropAt > 0 && f.writes == f.dropAt {
		f.crashed = true
		f.mu.Unlock()
		return len(p), nil // acknowledged, never persisted
	}
	f.mu.Unlock()
	return f.mem.write(h.name, p)
}

func (h *faultHandle) Sync() error {
	f := h.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.syncs++
	if f.crashAt > 0 && f.syncs == f.crashAt {
		f.crashed = true
		f.mu.Unlock()
		return ErrCrashed // volatile bytes are lost; durable image unchanged
	}
	if f.failAt > 0 && f.syncs == f.failAt {
		f.mu.Unlock()
		return fmt.Errorf("wal: injected fsync failure (sync %d)", f.syncs)
	}
	f.mu.Unlock()
	return f.mem.sync(h.name)
}

func (h *faultHandle) Close() error { return nil }

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.mem.ReadFile(name)
}

func (f *FaultFS) List() ([]string, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.mem.List()
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.mem.Truncate(name, size)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.mem.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.mem.Remove(name)
}
