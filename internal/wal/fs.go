// Package wal implements the engine's durability tier: an append-only,
// segmented write-ahead log of external tuples, group-committed off the
// ingestion hot path, plus Gamma checkpoints and crash recovery.
//
// The log is written by the session coordinator as it drains the sharded
// ingress ring (the tee point): every absorbed external tuple is encoded
// into a CRC-framed batch record, records are buffered and flushed by
// size-or-deadline before one amortised fsync (the classic group-commit
// shape), and segments are hash-chained head to tail so a tampered
// historical segment is rejected rather than replayed. Recovery loads the
// newest valid checkpoint and replays the WAL tail through the ordinary
// put path; the engine's deterministic fixpoint makes replay correctness
// testable against an uncrashed run (the parity property the crash-fault
// suite pins).
//
// Layout of a log directory:
//
//	seg-0000000000000001.wal     header ┐ record ... record [seal]
//	seg-0000000000000002.wal            │ each segment chained to the last
//	ckpt-0000000000003e8.ckpt           ┘ checkpoint covering tuple seq 1000
//
// Every write goes through the FS interface so the crash-fault harness
// (FaultFS) can drop, tear or bit-flip writes and simulate power loss at
// any fsync boundary; production uses DirFS, the real filesystem.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the file layer beneath a Log: the minimal set of operations the
// appender, the checkpointer and recovery need, rooted at one directory.
// Names are always bare file names ("seg-....wal"), never paths, so a
// fault-injecting implementation can key its behaviour on them.
type FS interface {
	// OpenAppend opens name for appending, creating it (and the root
	// directory) if absent.
	OpenAppend(name string) (File, error)
	// ReadFile returns the entire current contents of name.
	ReadFile(name string) ([]byte, error)
	// List returns the file names in the root, sorted ascending.
	List() ([]string, error)
	// Truncate shortens name to size bytes (recovery cutting a torn tail).
	Truncate(name string, size int64) error
	// Rename atomically renames old to new — the checkpoint publish step:
	// a checkpoint is fully written and synced under a temp name first, so
	// a crash never leaves a half-written file with a valid name.
	Rename(oldname, newname string) error
	// Remove deletes name (pruning superseded checkpoints).
	Remove(name string) error
}

// File is one appendable log file.
type File interface {
	io.Writer
	// Sync durably flushes everything written so far; a group commit is
	// exactly one Sync over many buffered records.
	Sync() error
	Close() error
}

// DirFS returns the production FS: real files under root, created on
// first use.
func DirFS(root string) FS { return &dirFS{root: root} }

type dirFS struct{ root string }

func (d *dirFS) path(name string) string { return filepath.Join(d.root, name) }

func (d *dirFS) OpenAppend(name string) (File, error) {
	if err := os.MkdirAll(d.root, 0o755); err != nil {
		return nil, err
	}
	return os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (d *dirFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(d.path(name)) }

func (d *dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *dirFS) Truncate(name string, size int64) error { return os.Truncate(d.path(name), size) }

func (d *dirFS) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

func (d *dirFS) Remove(name string) error { return os.Remove(d.path(name)) }

// ErrCrashed is returned by every FaultFS operation after the injected
// power loss: the process the FS belonged to is "dead", and only the
// durable view (FaultFS.Durable) remains.
var ErrCrashed = fmt.Errorf("wal: simulated power loss")
