package wal

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// Options configures a Log. Zero values take the defaults noted below.
type Options struct {
	// FS is the file layer; DirFS for production, FaultFS under test.
	FS FS
	// Identity names the tenant/program owning this log. Recovery refuses
	// a directory whose segments carry a different identity.
	Identity string
	// GroupBytes flushes the pending group once it reaches this many
	// encoded bytes (default 64 KiB). 1 forces a sync per append —
	// useful for deterministic crash-point tests, ruinous in production.
	GroupBytes int
	// GroupInterval is the deadline flush cadence (default 2ms): a group
	// never waits longer than this for more company before its fsync.
	GroupInterval time.Duration
	// SegmentBytes is the soft rotation threshold (default 4 MiB): a
	// segment past it is sealed and chained before the next group.
	SegmentBytes int64
	// Resolve maps logged table names to schemas during recovery.
	Resolve Resolver
	// OnError observes the first terminal log error (failed write/fsync).
	// The log is dead afterwards: every Append and Flush returns the error.
	OnError func(error)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.GroupBytes <= 0 {
		out.GroupBytes = 64 << 10
	}
	if out.GroupInterval <= 0 {
		out.GroupInterval = 2 * time.Millisecond
	}
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 4 << 20
	}
	return out
}

// Stats is a point-in-time snapshot of log counters, exported to /metrics
// and the bench artifact.
type Stats struct {
	Appended       uint64    // tuples handed to Append
	DurableSeq     uint64    // highest tuple sequence known fsynced
	Bytes          int64     // bytes written to segments
	GroupCommits   int64     // fsyncs that committed at least one batch
	Segments       int       // segments created or reopened by this log
	CheckpointSeq  uint64    // sequence covered by the newest checkpoint
	LastCheckpoint time.Time // zero if never checkpointed
}

// Log is the append side of the WAL. One goroutine (the session
// coordinator) calls Append; a committer goroutine flushes groups by
// deadline; Flush and Close are safe from any goroutine.
type Log struct {
	fs   FS
	opts Options
	host string

	mu        sync.Mutex
	err       error // terminal; sticky
	cur       File
	curName   string
	curIndex  uint64
	curBytes  int64
	chain     uint64 // running chain over flushed frame bytes
	buf       []byte // encoded frames awaiting the next group commit
	seq       uint64 // last sequence handed out
	bufEndSeq uint64 // seq covered once buf flushes
	durable   uint64 // seq covered by the last successful fsync
	stats     Stats

	closeOnce sync.Once
	closeCh   chan struct{}
	doneCh    chan struct{}
}

// hostFingerprint matches the BENCH artifact's host identification so a
// segment header records where its bytes were produced.
func hostFingerprint() string {
	return fmt.Sprintf("%s/%s go%s cpu%d", runtime.GOOS, runtime.GOARCH, runtime.Version(), runtime.NumCPU())
}

func segName(index uint64) string { return fmt.Sprintf("seg-%016x.wal", index) }
func ckptName(seq uint64) string  { return fmt.Sprintf("ckpt-%016x.ckpt", seq) }
func parseSegName(name string) (uint64, bool) {
	var idx uint64
	if n, err := fmt.Sscanf(name, "seg-%016x.wal", &idx); n == 1 && err == nil && name == segName(idx) {
		return idx, true
	}
	return 0, false
}
func parseCkptName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "ckpt-%016x.ckpt", &seq); n == 1 && err == nil && name == ckptName(seq) {
		return seq, true
	}
	return 0, false
}

// Append assigns the next sequence numbers to ts, encodes them as one
// batch record and queues it for the next group commit. It syncs inline
// only when the pending group crosses GroupBytes; otherwise the committer
// goroutine picks it up within GroupInterval.
func (l *Log) Append(ts []*tuple.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	firstSeq := l.seq + 1
	payload, err := appendBatchPayload(nil, firstSeq, ts)
	if err != nil {
		return l.failLocked(err)
	}
	l.seq += uint64(len(ts))
	l.bufEndSeq = l.seq
	l.stats.Appended += uint64(len(ts))
	l.buf = appendFrame(l.buf, payload)
	if len(l.buf) >= l.opts.GroupBytes {
		return l.flushLocked()
	}
	return nil
}

// Flush forces the pending group to disk: one write, one fsync.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// DurableSeq returns the highest tuple sequence known to be fsynced.
func (l *Log) DurableSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.DurableSeq = l.durable
	return s
}

// Err returns the terminal log error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *Log) failLocked(err error) error {
	if l.err != nil {
		return l.err
	}
	l.err = err
	if l.opts.OnError != nil {
		// Deliver on a fresh goroutine: the callback typically fails the
		// owning session, which in turn calls Close — which waits for the
		// committer goroutine that may be the one reporting the error.
		go l.opts.OnError(err)
	}
	return err
}

// flushLocked writes the pending group to the current segment and fsyncs
// it — the group commit. Rotation happens here, before the group lands, so
// a batch record never straddles segments.
func (l *Log) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if len(l.buf) == 0 {
		return nil
	}
	if l.curBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return l.failLocked(err)
		}
	}
	if err := l.writeSyncLocked(l.buf); err != nil {
		return l.failLocked(err)
	}
	l.chain = fold(l.chain, l.buf)
	l.buf = l.buf[:0]
	l.durable = l.bufEndSeq
	l.stats.GroupCommits++
	return nil
}

// writeSyncLocked writes p to the current segment and fsyncs.
func (l *Log) writeSyncLocked(p []byte) error {
	if _, err := l.cur.Write(p); err != nil {
		return fmt.Errorf("wal: write %s: %w", l.curName, err)
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.curName, err)
	}
	l.curBytes += int64(len(p))
	l.stats.Bytes += int64(len(p))
	return nil
}

// rotateLocked seals the current segment (trailer carrying the chain hash,
// one fsync) and opens the next, whose header pins the sealed chain.
func (l *Log) rotateLocked() error {
	seal := appendFrame(nil, appendSealPayload(nil, l.chain))
	if err := l.writeSyncLocked(seal); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", l.curName, err)
	}
	return l.openSegmentLocked(l.curIndex + 1)
}

// openSegmentLocked creates segment index and writes its header frame.
// The header is not synced on its own; the next group commit covers it.
func (l *Log) openSegmentLocked(index uint64) error {
	name := segName(index)
	f, err := l.fs.OpenAppend(name)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", name, err)
	}
	hdr := appendFrame(nil, appendHeaderPayload(nil, segHeader{
		index:     index,
		prevChain: l.chain,
		identity:  l.opts.Identity,
		host:      l.host,
	}))
	l.cur, l.curName, l.curIndex, l.curBytes = f, name, index, 0
	if _, err := f.Write(hdr); err != nil {
		return fmt.Errorf("wal: write %s: %w", name, err)
	}
	l.curBytes += int64(len(hdr))
	l.stats.Bytes += int64(len(hdr))
	l.chain = fold(l.chain, hdr)
	l.stats.Segments++
	return nil
}

// committer is the deadline half of group commit.
func (l *Log) committer() {
	defer close(l.doneCh)
	tick := time.NewTicker(l.opts.GroupInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			_ = l.Flush() // sticky error surfaces via OnError / next Append
		case <-l.closeCh:
			return
		}
	}
}

// Close flushes and fsyncs the tail, seals the final segment and releases
// the file. A closed log's directory recovers with zero replay loss up to
// the last Append.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		close(l.closeCh)
		<-l.doneCh
		l.mu.Lock()
		defer l.mu.Unlock()
		if err := l.flushLocked(); err == nil && l.cur != nil {
			seal := appendFrame(nil, appendSealPayload(nil, l.chain))
			if err := l.writeSyncLocked(seal); err != nil {
				_ = l.failLocked(err)
			}
		}
		if l.cur != nil {
			_ = l.cur.Close()
			l.cur = nil
		}
	})
	return l.Err()
}
