package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// Record framing. Every record in a segment is one CRC-framed payload:
//
//	u32le payloadLen | u32le crc32(IEEE, payload) | payload
//
// and the payload's first byte is its record type. A reader that finds a
// short frame, an impossible length or a CRC mismatch knows the exact byte
// offset of the damage; whether that is a benign torn tail or loud
// corruption depends on where in the log it sits (see recover.go).
//
// Payloads:
//
//	recHeader  magic+version, segment index, previous chain hash, the
//	           tenant/program identity and the host fingerprint — first
//	           record of every segment.
//	recBatch   one group-committed batch of external tuples: the sequence
//	           number of its first tuple, a count, then each tuple as
//	           (u8 nameLen|tableName|fields), fields encoded by schema
//	           column kind (int/float 8B LE, bool 1B, string u32le-len).
//	recSeal    the segment trailer: the chain hash over everything before
//	           it — fnv64a folded over the previous segment's seal and
//	           every frame of this segment. Tamper with one durable byte
//	           anywhere in a sealed segment and the chain breaks.
const (
	recHeader = 0x01
	recBatch  = 0x02
	recSeal   = 0x03
)

const (
	walMagic    = "jstarwal"
	ckptMagic   = "jstarckp"
	walVersion  = 1
	frameHead   = 8        // len + crc
	maxFrameLen = 64 << 20 // corrupt-length guard
	maxWireStr  = 16 << 20 // mirrors the serve codec's string guard
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// appendFrame wraps payload in the length+CRC frame.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// readFrame parses one frame at buf[off:], returning the payload and the
// offset just past the frame. ok is false when the bytes at off do not
// form a whole, CRC-valid frame — the caller decides whether that is a
// torn tail or corruption.
func readFrame(buf []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+frameHead > int64(len(buf)) {
		return nil, off, false
	}
	n := binary.LittleEndian.Uint32(buf[off:])
	crc := binary.LittleEndian.Uint32(buf[off+4:])
	if n == 0 || n > maxFrameLen || off+frameHead+int64(n) > int64(len(buf)) {
		return nil, off, false
	}
	payload = buf[off+frameHead : off+frameHead+int64(n)]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, off, false
	}
	return payload, off + frameHead + int64(n), true
}

// fold mixes bytes into the running FNV-1a segment chain.
func fold(h uint64, p []byte) uint64 {
	const prime = 1099511628211
	for _, b := range p {
		h = (h ^ uint64(b)) * prime
	}
	return h
}

const chainSeed uint64 = 1469598103934665603 // FNV-1a offset basis

// ---- segment header ----

type segHeader struct {
	index     uint64
	prevChain uint64
	identity  string
	host      string
}

func appendHeaderPayload(dst []byte, h segHeader) []byte {
	dst = append(dst, recHeader)
	dst = append(dst, walMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, walVersion)
	dst = binary.LittleEndian.AppendUint64(dst, h.index)
	dst = binary.LittleEndian.AppendUint64(dst, h.prevChain)
	dst = appendString(dst, h.identity)
	return appendString(dst, h.host)
}

func parseHeaderPayload(p []byte) (segHeader, error) {
	var h segHeader
	if len(p) < 1+len(walMagic)+2+16 || p[0] != recHeader {
		return h, fmt.Errorf("not a segment header")
	}
	p = p[1:]
	if string(p[:len(walMagic)]) != walMagic {
		return h, fmt.Errorf("bad magic %q", p[:len(walMagic)])
	}
	p = p[len(walMagic):]
	if v := binary.LittleEndian.Uint16(p); v != walVersion {
		return h, fmt.Errorf("unsupported wal version %d (want %d)", v, walVersion)
	}
	p = p[2:]
	h.index = binary.LittleEndian.Uint64(p)
	h.prevChain = binary.LittleEndian.Uint64(p[8:])
	p = p[16:]
	var err error
	if h.identity, p, err = takeString(p); err != nil {
		return h, err
	}
	if h.host, _, err = takeString(p); err != nil {
		return h, err
	}
	return h, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func takeString(p []byte) (string, []byte, error) {
	if len(p) < 4 {
		return "", p, fmt.Errorf("truncated string length")
	}
	n := binary.LittleEndian.Uint32(p)
	if n > maxWireStr || int(n) > len(p)-4 {
		return "", p, fmt.Errorf("string length %d exceeds payload", n)
	}
	return string(p[4 : 4+n]), p[4+n:], nil
}

// ---- batch records ----

// appendBatchPayload encodes one group of external tuples. firstSeq is the
// global tuple sequence of ts[0]; the reader uses it to skip tuples a
// checkpoint already covers and to detect reordered segments.
func appendBatchPayload(dst []byte, firstSeq uint64, ts []*tuple.Tuple) ([]byte, error) {
	dst = append(dst, recBatch)
	dst = binary.LittleEndian.AppendUint64(dst, firstSeq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ts)))
	for _, t := range ts {
		var err error
		if dst, err = appendTuple(dst, t); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func appendTuple(dst []byte, t *tuple.Tuple) ([]byte, error) {
	sch := t.Schema()
	if sch == nil {
		return dst, fmt.Errorf("wal: cannot log a schema-less probe tuple")
	}
	if len(sch.Name) > 255 {
		return dst, fmt.Errorf("wal: table name %q exceeds 255 bytes", sch.Name)
	}
	dst = append(dst, byte(len(sch.Name)))
	dst = append(dst, sch.Name...)
	return appendFields(dst, t, sch)
}

// appendFields encodes just the field values of t — used by batch records
// (after the table name) and by checkpoint table sections (where the name
// is written once per table, not per row).
func appendFields(dst []byte, t *tuple.Tuple, sch *tuple.Schema) ([]byte, error) {
	for i, c := range sch.Columns {
		v := t.Field(i)
		switch c.Kind {
		case tuple.KindInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.AsInt()))
		case tuple.KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
		case tuple.KindBool:
			b := byte(0)
			if v.AsBool() {
				b = 1
			}
			dst = append(dst, b)
		case tuple.KindString:
			s := v.AsString()
			if len(s) > maxWireStr {
				return dst, fmt.Errorf("wal: string field of %s exceeds %d bytes", sch.Name, maxWireStr)
			}
			dst = appendString(dst, s)
		default:
			return dst, fmt.Errorf("wal: table %s column %s has unsupported kind %v", sch.Name, c.Name, c.Kind)
		}
	}
	return dst, nil
}

// Resolver maps a logged table name back to its schema — typically the
// Program's table registry. Decoding fails loudly on unknown tables: a WAL
// replayed against a program that no longer declares the table cannot be
// silently dropped.
type Resolver func(table string) *tuple.Schema

// parseBatchPayload decodes a batch record's tuples, appending to out.
func parseBatchPayload(p []byte, resolve Resolver, out []*tuple.Tuple) (firstSeq uint64, _ []*tuple.Tuple, err error) {
	if len(p) < 13 || p[0] != recBatch {
		return 0, out, fmt.Errorf("not a batch record")
	}
	firstSeq = binary.LittleEndian.Uint64(p[1:])
	count := binary.LittleEndian.Uint32(p[9:])
	p = p[13:]
	for i := uint32(0); i < count; i++ {
		var t *tuple.Tuple
		if t, p, err = parseTuple(p, resolve); err != nil {
			return firstSeq, out, fmt.Errorf("tuple %d: %w", i, err)
		}
		out = append(out, t)
	}
	return firstSeq, out, nil
}

func parseTuple(p []byte, resolve Resolver) (*tuple.Tuple, []byte, error) {
	if len(p) < 1 {
		return nil, p, fmt.Errorf("truncated table name length")
	}
	n := int(p[0])
	if len(p) < 1+n {
		return nil, p, fmt.Errorf("truncated table name")
	}
	name := string(p[1 : 1+n])
	p = p[1+n:]
	sch := resolve(name)
	if sch == nil {
		return nil, p, fmt.Errorf("unknown table %q (not declared on this program)", name)
	}
	return parseFields(p, sch)
}

// parseFields decodes one tuple's field values for a known schema.
func parseFields(p []byte, sch *tuple.Schema) (*tuple.Tuple, []byte, error) {
	name := sch.Name
	fields := make([]tuple.Value, len(sch.Columns))
	for i, c := range sch.Columns {
		switch c.Kind {
		case tuple.KindInt:
			if len(p) < 8 {
				return nil, p, fmt.Errorf("truncated int field of %s", name)
			}
			fields[i] = tuple.Int(int64(binary.LittleEndian.Uint64(p)))
			p = p[8:]
		case tuple.KindFloat:
			if len(p) < 8 {
				return nil, p, fmt.Errorf("truncated float field of %s", name)
			}
			fields[i] = tuple.Float(math.Float64frombits(binary.LittleEndian.Uint64(p)))
			p = p[8:]
		case tuple.KindBool:
			if len(p) < 1 {
				return nil, p, fmt.Errorf("truncated bool field of %s", name)
			}
			fields[i] = tuple.Bool(p[0] != 0)
			p = p[1:]
		case tuple.KindString:
			s, rest, err := takeString(p)
			if err != nil {
				return nil, p, fmt.Errorf("string field of %s: %w", name, err)
			}
			fields[i] = tuple.String_(s)
			p = rest
		default:
			return nil, p, fmt.Errorf("unsupported column kind %v", c.Kind)
		}
	}
	return tuple.New(sch, fields...), p, nil
}

// ---- seal records ----

func appendSealPayload(dst []byte, chain uint64) []byte {
	dst = append(dst, recSeal)
	return binary.LittleEndian.AppendUint64(dst, chain)
}

func parseSealPayload(p []byte) (uint64, bool) {
	if len(p) != 9 || p[0] != recSeal {
		return 0, false
	}
	return binary.LittleEndian.Uint64(p[1:]), true
}
