package wal

import (
	"fmt"
	"strings"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// CorruptError is the loud failure mode: the log is damaged somewhere a
// crash cannot explain — inside a sealed segment, across the hash chain,
// or in a decodable-but-impossible record — and recovery refuses to guess.
// It names the exact segment and byte offset so the damage can be audited.
type CorruptError struct {
	Segment string
	Offset  int64
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log: %s at %s+%d", e.Reason, e.Segment, e.Offset)
}

// Recovered is what Open found in an existing log directory.
type Recovered struct {
	// Checkpoint is the newest valid checkpoint, nil if none survived.
	Checkpoint *Checkpoint
	// Tail holds the replayable tuples: every logged tuple with sequence
	// beyond the checkpoint, in original absorption order.
	Tail []*tuple.Tuple
	// DurableSeq is the highest tuple sequence the recovered state covers.
	DurableSeq uint64
	// TruncatedBytes counts torn-tail bytes cut from the final segment —
	// the benign kind of damage a crash mid-group-commit leaves.
	TruncatedBytes int64
	// Segments is how many sealed segments were verified against the chain.
	Segments int
}

// Open opens (or creates) the log in o.FS, recovering whatever a previous
// process left behind. The contract, pinned by the crash-fault suite:
//
//   - A torn or CRC-failed record in the final, unsealed segment is what a
//     power cut mid-write leaves; the tail is truncated there and recovery
//     proceeds with everything before it.
//   - Any damage in a sealed segment, any hash-chain or seal mismatch, any
//     identity mismatch, or a record that passes its CRC but cannot decode
//     against the program, is corruption: Open fails with a *CorruptError
//     naming the segment and offset. Never a silently wrong table.
//
// On success the returned Log is ready to Append (the final segment is
// sealed and a fresh one opened, so every process boundary is visible in
// the chain), and Recovered describes what to restore and replay.
func Open(o Options) (*Log, *Recovered, error) {
	o = o.withDefaults()
	if o.FS == nil {
		return nil, nil, fmt.Errorf("wal: Options.FS is required")
	}
	if o.Resolve == nil {
		return nil, nil, fmt.Errorf("wal: Options.Resolve is required")
	}
	names, err := o.FS.List()
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list log dir: %w", err)
	}
	var segs []uint64
	var ckpts []uint64
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			_ = o.FS.Remove(n) // unpublished checkpoint from a crashed writer
			continue
		}
		if idx, ok := parseSegName(n); ok {
			segs = append(segs, idx)
		} else if seq, ok := parseCkptName(n); ok {
			ckpts = append(ckpts, seq)
		}
	}
	// List is sorted and the names are fixed-width hex, so segs and ckpts
	// are ascending by value.

	rec := &Recovered{}
	for i := len(ckpts) - 1; i >= 0; i-- {
		buf, err := o.FS.ReadFile(ckptName(ckpts[i]))
		if err != nil {
			continue
		}
		c, err := decodeCheckpoint(buf, o.Resolve)
		if err != nil {
			continue // damaged checkpoint: fall back to the previous one
		}
		if c.Identity != o.Identity {
			return nil, nil, fmt.Errorf("wal: checkpoint %s belongs to %q, not %q",
				ckptName(ckpts[i]), c.Identity, o.Identity)
		}
		rec.Checkpoint = c
		break
	}

	l := &Log{
		fs:      o.FS,
		opts:    o,
		host:    hostFingerprint(),
		chain:   chainSeed,
		closeCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
	}

	ckptSeq := uint64(0)
	if rec.Checkpoint != nil {
		ckptSeq = rec.Checkpoint.Seq
	}
	expectSeq := uint64(1) // batch sequence continuity across the whole log
	lastSeq := uint64(0)
	nextIndex := uint64(1)

	for si, idx := range segs {
		name := segName(idx)
		last := si == len(segs)-1
		if idx != nextIndex {
			return nil, nil, &CorruptError{Segment: name, Offset: 0,
				Reason: fmt.Sprintf("segment index %d, expected %d (missing segment)", idx, nextIndex)}
		}
		nextIndex = idx + 1
		buf, err := o.FS.ReadFile(name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read %s: %w", name, err)
		}
		var off int64
		payload, next, ok := readFrame(buf, off)
		if !ok {
			if last {
				// Torn before the header even landed: discard the segment
				// and reuse its index.
				rec.TruncatedBytes += int64(len(buf))
				_ = o.FS.Remove(name)
				nextIndex = idx
				break
			}
			return nil, nil, &CorruptError{Segment: name, Offset: off, Reason: "unreadable segment header"}
		}
		hdr, err := parseHeaderPayload(payload)
		if err != nil {
			return nil, nil, &CorruptError{Segment: name, Offset: off, Reason: err.Error()}
		}
		if hdr.index != idx {
			return nil, nil, &CorruptError{Segment: name, Offset: off,
				Reason: fmt.Sprintf("header claims index %d", hdr.index)}
		}
		if hdr.identity != o.Identity {
			return nil, nil, &CorruptError{Segment: name, Offset: off,
				Reason: fmt.Sprintf("segment belongs to %q, not %q", hdr.identity, o.Identity)}
		}
		if hdr.prevChain != l.chain {
			return nil, nil, &CorruptError{Segment: name, Offset: off,
				Reason: fmt.Sprintf("chain mismatch: header pins %016x, chain is %016x", hdr.prevChain, l.chain)}
		}
		l.chain = fold(l.chain, buf[off:next])
		off = next
		sealed := false
		for off < int64(len(buf)) {
			payload, next, ok := readFrame(buf, off)
			if !ok {
				if last && !sealed {
					// The benign crash signature: a group commit that never
					// finished. Cut the tail and recover everything before it.
					if err := o.FS.Truncate(name, off); err != nil {
						return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
					}
					rec.TruncatedBytes += int64(len(buf)) - off
					buf = buf[:off]
					break
				}
				return nil, nil, &CorruptError{Segment: name, Offset: off, Reason: "unreadable record"}
			}
			switch payload[0] {
			case recBatch:
				if sealed {
					return nil, nil, &CorruptError{Segment: name, Offset: off, Reason: "record after seal"}
				}
				before := len(rec.Tail)
				firstSeq, tail, err := parseBatchPayload(payload, o.Resolve, rec.Tail)
				if err != nil {
					// The CRC passed, so these bytes are what was written —
					// the program and the log disagree. Loud, not truncated.
					return nil, nil, &CorruptError{Segment: name, Offset: off, Reason: err.Error()}
				}
				n := uint64(len(tail) - before)
				if firstSeq != expectSeq {
					return nil, nil, &CorruptError{Segment: name, Offset: off,
						Reason: fmt.Sprintf("batch starts at seq %d, expected %d", firstSeq, expectSeq)}
				}
				expectSeq += n
				lastSeq = firstSeq + n - 1
				// Drop the checkpoint-covered prefix from the replay tail.
				if lastSeq <= ckptSeq {
					rec.Tail = tail[:before]
				} else if firstSeq <= ckptSeq {
					covered := int(ckptSeq - firstSeq + 1)
					rec.Tail = append(tail[:before], tail[before+covered:]...)
				} else {
					rec.Tail = tail
				}
				l.chain = fold(l.chain, buf[off:next])
			case recSeal:
				if sealed {
					return nil, nil, &CorruptError{Segment: name, Offset: off, Reason: "record after seal"}
				}
				chain, ok := parseSealPayload(payload)
				if !ok {
					return nil, nil, &CorruptError{Segment: name, Offset: off, Reason: "malformed seal"}
				}
				if chain != l.chain {
					return nil, nil, &CorruptError{Segment: name, Offset: off,
						Reason: fmt.Sprintf("seal chain %016x does not match computed %016x", chain, l.chain)}
				}
				sealed = true
			default:
				return nil, nil, &CorruptError{Segment: name, Offset: off,
					Reason: fmt.Sprintf("unknown record type 0x%02x", payload[0])}
			}
			off = next
		}
		if !sealed && !last {
			return nil, nil, &CorruptError{Segment: name, Offset: off, Reason: "interior segment missing its seal"}
		}
		rec.Segments++
		if !sealed {
			// Crashed writer's final segment, tail already truncated: seal
			// it now so the process boundary is pinned in the chain.
			if int64(len(buf)) > 0 {
				f, err := o.FS.OpenAppend(name)
				if err != nil {
					return nil, nil, fmt.Errorf("wal: reopen %s: %w", name, err)
				}
				seal := appendFrame(nil, appendSealPayload(nil, l.chain))
				if _, err := f.Write(seal); err == nil {
					err = f.Sync()
				}
				if err != nil {
					f.Close()
					return nil, nil, fmt.Errorf("wal: seal %s: %w", name, err)
				}
				if err := f.Close(); err != nil {
					return nil, nil, fmt.Errorf("wal: close %s: %w", name, err)
				}
				l.stats.Bytes += int64(len(seal))
			}
		}
		l.stats.Bytes += int64(len(buf))
	}

	rec.DurableSeq = lastSeq
	if ckptSeq > rec.DurableSeq {
		rec.DurableSeq = ckptSeq
	}
	l.seq = rec.DurableSeq
	l.bufEndSeq = rec.DurableSeq
	l.durable = rec.DurableSeq
	l.stats.Appended = 0
	l.stats.CheckpointSeq = ckptSeq
	l.stats.Segments = rec.Segments

	l.mu.Lock()
	err = l.openSegmentLocked(nextIndex)
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	go l.committer()
	return l, rec, nil
}
