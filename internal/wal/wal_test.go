package wal

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"testing"
	"time"

	"github.com/jstar-lang/jstar/internal/tuple"
)

var evSchema = tuple.MustSchema("ev", []tuple.Column{
	{Name: "id", Kind: tuple.KindInt, Key: true},
	{Name: "name", Kind: tuple.KindString},
	{Name: "score", Kind: tuple.KindFloat},
	{Name: "ok", Kind: tuple.KindBool},
}, nil)

func testResolve(table string) *tuple.Schema {
	if table == "ev" {
		return evSchema
	}
	return nil
}

func ev(i int) *tuple.Tuple {
	return tuple.New(evSchema,
		tuple.Int(int64(i)),
		tuple.String_(fmt.Sprintf("payload-%d", i)),
		tuple.Float(float64(i)*1.5),
		tuple.Bool(i%2 == 0))
}

func evID(t *tuple.Tuple) int { return int(t.Field(0).AsInt()) }

func testOpts(fs FS) Options {
	return Options{
		FS:            fs,
		Identity:      "tenant-a",
		GroupBytes:    1, // flush (and fsync) on every Append: deterministic crash points
		GroupInterval: time.Hour,
		SegmentBytes:  512, // rotate every few batches
		Resolve:       testResolve,
	}
}

// recoveredIDs returns the ids the recovered state covers: checkpoint rows
// plus replay tail, sorted.
func recoveredIDs(rec *Recovered) []int {
	var ids []int
	if rec.Checkpoint != nil {
		for _, tb := range rec.Checkpoint.Tables {
			for _, r := range tb.Rows {
				ids = append(ids, evID(r))
			}
		}
	}
	for _, r := range rec.Tail {
		ids = append(ids, evID(r))
	}
	slices.Sort(ids)
	return ids
}

// wantPrefix asserts ids == [1, 2, ..., n].
func wantPrefix(t *testing.T, ids []int, n int) {
	t.Helper()
	if len(ids) != n {
		t.Fatalf("recovered %d tuples, want prefix of length %d (ids=%v)", len(ids), n, ids)
	}
	for i, id := range ids {
		if id != i+1 {
			t.Fatalf("recovered ids %v: position %d is %d, want %d", ids, i, id, i+1)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, rec, err := Open(testOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint != nil || len(rec.Tail) != 0 || rec.DurableSeq != 0 {
		t.Fatalf("fresh dir recovered non-empty state: %+v", rec)
	}
	for i := 1; i <= 20; i += 2 {
		if err := l.Append([]*tuple.Tuple{ev(i), ev(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.DurableSeq(); got != 20 {
		t.Fatalf("durable seq %d, want 20", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(testOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	wantPrefix(t, recoveredIDs(rec2), 20)
	if rec2.DurableSeq != 20 {
		t.Fatalf("recovered durable seq %d, want 20", rec2.DurableSeq)
	}
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("clean close should truncate nothing, got %d bytes", rec2.TruncatedBytes)
	}
	// Replay order must be absorption order, not just the right set.
	for i, r := range rec2.Tail {
		if evID(r) != i+1 {
			t.Fatalf("tail[%d] = id %d, want %d", i, evID(r), i+1)
		}
	}
	// Field fidelity through the codec.
	r := rec2.Tail[6]
	if r.Field(1).AsString() != "payload-7" || r.Field(2).AsFloat() != 10.5 || r.Field(3).AsBool() {
		t.Fatalf("tuple 7 fields corrupted: %v", r)
	}
	// The new process appends where the old one stopped.
	if err := l2.Append([]*tuple.Tuple{ev(21)}); err != nil {
		t.Fatal(err)
	}
	if got := l2.DurableSeq(); got != 21 {
		t.Fatalf("durable seq after reopen append = %d, want 21", got)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	fs := NewMemFS()
	o := testOpts(fs)
	o.GroupBytes = 1 << 20 // never flush on size
	l, _, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := l.Append([]*tuple.Tuple{ev(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.DurableSeq(); got != 0 {
		t.Fatalf("nothing flushed yet, durable seq = %d", got)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.GroupCommits != 1 {
		t.Fatalf("100 appends, one flush: got %d group commits", st.GroupCommits)
	}
	if st.DurableSeq != 100 {
		t.Fatalf("durable seq %d, want 100", st.DurableSeq)
	}
	l.Close()
}

func TestCheckpointCoversPrefix(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(testOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	var rows []*tuple.Tuple
	for i := 1; i <= 10; i++ {
		rows = append(rows, ev(i))
		if err := l.Append([]*tuple.Tuple{ev(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(&Checkpoint{Seq: 10, Tables: []CheckpointTable{{Name: "ev", Rows: rows}}}); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 15; i++ {
		if err := l.Append([]*tuple.Tuple{ev(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, rec, err := Open(testOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 10 {
		t.Fatalf("expected checkpoint at seq 10, got %+v", rec.Checkpoint)
	}
	if len(rec.Tail) != 5 || evID(rec.Tail[0]) != 11 {
		t.Fatalf("tail should be exactly seq 11..15, got %d tuples starting %v", len(rec.Tail), rec.Tail)
	}
	wantPrefix(t, recoveredIDs(rec), 15)
}

func TestCheckpointRejectsUndurableSeq(t *testing.T) {
	l, _, err := Open(testOpts(NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = l.WriteCheckpoint(&Checkpoint{Seq: 5})
	if err == nil || !strings.Contains(err.Error(), "exceeds durable seq") {
		t.Fatalf("checkpoint beyond the durable watermark must be refused, got %v", err)
	}
}

func TestCheckpointPruneKeepsTwo(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(testOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append([]*tuple.Tuple{ev(i)}); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteCheckpoint(&Checkpoint{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, _ := fs.List()
	var ck []string
	for _, n := range names {
		if _, ok := parseCkptName(n); ok {
			ck = append(ck, n)
		}
	}
	if len(ck) != 2 || ck[0] != ckptName(2) || ck[1] != ckptName(3) {
		t.Fatalf("want the two newest checkpoints kept, got %v", ck)
	}
}

// crashWorkload drives a fixed append+checkpoint script against l until it
// finishes or the log dies, returning how many appends were acknowledged.
func crashWorkload(l *Log) int {
	acked := 0
	var rows []*tuple.Tuple
	for i := 1; i <= 40; i++ {
		rows = append(rows, ev(i))
		if err := l.Append([]*tuple.Tuple{ev(i)}); err != nil {
			return acked
		}
		acked = i
		if i%10 == 0 {
			covered := l.DurableSeq()
			if err := l.WriteCheckpoint(&Checkpoint{Seq: covered,
				Tables: []CheckpointTable{{Name: "ev", Rows: rows[:covered]}}}); err != nil {
				return acked
			}
		}
	}
	return acked
}

// TestCrashMatrixEveryFsync is the core recovery property: for a power
// loss at EVERY fsync boundary of the workload, recovery from the durable
// image yields exactly the prefix 1..n for some n >= the acked count —
// acknowledged group commits are never lost, and nothing is ever invented
// or reordered.
func TestCrashMatrixEveryFsync(t *testing.T) {
	clean := NewFaultFS()
	l, _, err := Open(testOpts(clean))
	if err != nil {
		t.Fatal(err)
	}
	if got := crashWorkload(l); got != 40 {
		t.Fatalf("clean run acked %d, want 40", got)
	}
	l.Close()
	total := clean.Syncs()
	if total < 40 {
		t.Fatalf("workload only produced %d fsyncs", total)
	}

	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("sync%03d", k), func(t *testing.T) {
			ffs := NewFaultFS()
			ffs.CrashAtSync(k)
			l, _, err := Open(testOpts(ffs))
			if err != nil {
				// Crash can land inside Open's own segment bootstrap.
				if !ffs.Crashed() {
					t.Fatal(err)
				}
				return
			}
			acked := crashWorkload(l)
			l.Close()
			if !ffs.Crashed() {
				t.Fatalf("crash point %d never fired", k)
			}

			l2, rec, err := Open(testOpts(ffs.Durable()))
			if err != nil {
				t.Fatalf("recovery after crash at sync %d: %v", k, err)
			}
			defer l2.Close()
			ids := recoveredIDs(rec)
			if len(ids) < acked {
				t.Fatalf("crash at sync %d lost acknowledged data: acked %d, recovered %d", k, acked, len(ids))
			}
			wantPrefix(t, ids, len(ids))
			if rec.DurableSeq != uint64(len(ids)) {
				t.Fatalf("durable seq %d disagrees with recovered prefix %d", rec.DurableSeq, len(ids))
			}
		})
	}
}

// TestTornWriteMatrix tears each write of the workload in half: the torn
// record must be cut at recovery, never half-applied.
func TestTornWriteMatrix(t *testing.T) {
	clean := NewFaultFS()
	l, _, err := Open(testOpts(clean))
	if err != nil {
		t.Fatal(err)
	}
	crashWorkload(l)
	l.Close()
	clean.mu.Lock()
	totalWrites := clean.writes
	clean.mu.Unlock()

	for k := 1; k <= totalWrites; k += 3 {
		for _, keep := range []int{0, 5, 17} {
			k, keep := k, keep
			t.Run(fmt.Sprintf("write%03d_keep%d", k, keep), func(t *testing.T) {
				ffs := NewFaultFS()
				ffs.TearWrite(k, keep)
				l, _, err := Open(testOpts(ffs))
				if err != nil {
					if !ffs.Crashed() {
						t.Fatal(err)
					}
					return
				}
				acked := crashWorkload(l)
				l.Close()
				if !ffs.Crashed() {
					t.Fatalf("tear point %d never fired", k)
				}
				_, rec, err := Open(testOpts(ffs.Durable()))
				if err != nil {
					t.Fatalf("recovery after torn write %d: %v", k, err)
				}
				ids := recoveredIDs(rec)
				if len(ids) < acked {
					t.Fatalf("torn write %d lost acknowledged data: acked %d, recovered %d", k, acked, len(ids))
				}
				wantPrefix(t, ids, len(ids))
			})
		}
	}
}

// TestDropWriteMatrix: a lying cache acks a write that never hits the
// medium. The workload's *next* fsync would normally persist it; since the
// drive dropped it, the bytes must simply be absent after recovery — an
// untruncated hole is impossible because the drop kills the process at the
// same write.
func TestDropWriteMatrix(t *testing.T) {
	for k := 1; k <= 60; k += 5 {
		k := k
		t.Run(fmt.Sprintf("write%03d", k), func(t *testing.T) {
			ffs := NewFaultFS()
			ffs.DropWrite(k)
			l, _, err := Open(testOpts(ffs))
			if err != nil {
				if !ffs.Crashed() {
					t.Fatal(err)
				}
				return
			}
			crashWorkload(l)
			l.Close()
			if !ffs.Crashed() {
				t.Skip("workload shorter than drop point")
			}
			_, rec, err := Open(testOpts(ffs.Durable()))
			if err != nil {
				t.Fatalf("recovery after dropped write %d: %v", k, err)
			}
			wantPrefix(t, recoveredIDs(rec), len(recoveredIDs(rec)))
		})
	}
}

func TestFailedFsyncIsTerminalAndLoud(t *testing.T) {
	ffs := NewFaultFS()
	o := testOpts(ffs)
	errCh := make(chan error, 1)
	o.OnError = func(err error) { errCh <- err }
	l, _, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailSync(3) // past Open's bootstrap, mid-workload
	acked := crashWorkload(l)
	if acked == 40 {
		t.Fatal("workload survived an injected fsync failure")
	}
	select {
	case err := <-errCh:
		if !strings.Contains(err.Error(), "injected fsync failure") {
			t.Fatalf("OnError got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("OnError never delivered the fsync failure")
	}
	if err := l.Append([]*tuple.Tuple{ev(99)}); err == nil {
		t.Fatal("append after terminal error must fail")
	}
	l.Close()
	// The disk is "dying", not dead: what reached it recovers.
	_, rec, err := Open(testOpts(ffs.Durable()))
	if err != nil {
		t.Fatal(err)
	}
	ids := recoveredIDs(rec)
	if len(ids) < acked {
		t.Fatalf("acked %d, recovered %d", acked, len(ids))
	}
	wantPrefix(t, ids, len(ids))
}

// TestBitFlipSealedSegmentRejected pins the tamper-evidence property: one
// flipped bit anywhere in a sealed (historical) segment makes recovery
// fail loudly with the exact segment, never silently drop or alter data.
func TestBitFlipSealedSegmentRejected(t *testing.T) {
	ffs := NewFaultFS()
	l, _, err := Open(testOpts(ffs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := l.Append([]*tuple.Tuple{ev(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("workload produced only %d segments; rotation threshold too high for this test", st.Segments)
	}
	seg := segName(2) // sealed, interior
	data, err := ffs.Durable().ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{1, int64(len(data) / 2), int64(len(data) - 2)} {
		mem := ffs.Durable()
		tampered := NewFaultFS()
		tampered.mem = mem
		if err := tampered.FlipBit(seg, off); err != nil {
			t.Fatal(err)
		}
		_, _, err = Open(testOpts(mem))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at %s+%d: want CorruptError, got %v", seg, off, err)
		}
		if ce.Segment != seg {
			t.Fatalf("flip at %s+%d blamed segment %s", seg, off, ce.Segment)
		}
	}
}

// TestBitFlipFinalSegmentTruncates: damage in the final, unsealed segment
// is indistinguishable from a torn group commit, so it truncates there —
// still a valid covering prefix, never a wrong table.
func TestBitFlipFinalSegmentTruncates(t *testing.T) {
	ffs := NewFaultFS()
	o := testOpts(ffs)
	o.SegmentBytes = 1 << 20 // single segment
	ffs.CrashAtSync(25)      // die mid-workload so the final segment is unsealed
	l, _, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	crashWorkload(l)
	l.Close()
	mem := ffs.Durable()
	data, err := mem.ReadFile(segName(1))
	if err != nil {
		t.Fatal(err)
	}
	tamperer := NewFaultFS()
	tamperer.mem = mem
	if err := tamperer.FlipBit(segName(1), int64(len(data)*3/4)); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(testOpts(mem))
	if err != nil {
		t.Fatalf("flip in unsealed tail must truncate, not fail: %v", err)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("expected a truncated tail")
	}
	ids := recoveredIDs(rec)
	if len(ids) == 0 {
		t.Fatal("flip at 3/4 of the segment should leave a non-empty prefix")
	}
	wantPrefix(t, ids, len(ids))
}

// TestBitFlipNewestCheckpointFallsBack: a damaged checkpoint is skipped in
// favour of the previous one, with the WAL tail making up the difference.
func TestBitFlipNewestCheckpointFallsBack(t *testing.T) {
	ffs := NewFaultFS()
	l, _, err := Open(testOpts(ffs))
	if err != nil {
		t.Fatal(err)
	}
	if got := crashWorkload(l); got != 40 {
		t.Fatalf("clean run acked %d", got)
	}
	l.Close()
	st := l.Stats()
	if st.CheckpointSeq != 40 {
		t.Fatalf("newest checkpoint at %d, want 40", st.CheckpointSeq)
	}
	mem := ffs.Durable()
	tamperer := NewFaultFS()
	tamperer.mem = mem
	if err := tamperer.FlipBit(ckptName(40), 30); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(testOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 30 {
		t.Fatalf("should fall back to checkpoint 30, got %+v", rec.Checkpoint)
	}
	wantPrefix(t, recoveredIDs(rec), 40)
}

func TestIdentityMismatchRefused(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(testOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]*tuple.Tuple{ev(1)})
	l.Close()
	o := testOpts(fs)
	o.Identity = "tenant-b"
	_, _, err = Open(o)
	if err == nil || !strings.Contains(err.Error(), `"tenant-a"`) {
		t.Fatalf("want identity mismatch error, got %v", err)
	}
}

func TestSegmentHeaderCarriesHostFingerprint(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(testOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]*tuple.Tuple{ev(1)})
	l.Close()
	buf, err := fs.ReadFile(segName(1))
	if err != nil {
		t.Fatal(err)
	}
	payload, _, ok := readFrame(buf, 0)
	if !ok {
		t.Fatal("unreadable header")
	}
	hdr, err := parseHeaderPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.host != hostFingerprint() || hdr.identity != "tenant-a" {
		t.Fatalf("header = %+v", hdr)
	}
}
