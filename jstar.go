// Package jstar is the public API of the Go implementation of JStar — the
// declarative, implicitly parallel, Datalog-with-causality language of
// Utting, Weng and Cleary ("The JStar Language Philosophy", Univ. of
// Waikato WP 06/2013).
//
// A JStar program stores all data in immutable in-memory relations. Rules
// fire once for each tuple of their trigger table, query the database, and
// put new tuples — whose timestamps must not precede the trigger's (the law
// of causality). Execution is bottom-up and parallel by default: each step
// extracts the minimal causal equivalence class from the Delta tree and
// fires all its rules concurrently on a work-stealing pool.
//
// Quickstart (the paper's §3 Ship example):
//
//	p := jstar.NewProgram()
//	ship := p.Table("Ship",
//		jstar.Cols(jstar.KeyInt("frame"), jstar.IntCol("x"), jstar.IntCol("y"),
//			jstar.IntCol("dx"), jstar.IntCol("dy")),
//		jstar.OrderBy(jstar.Lit("Int"), jstar.Seq("frame")))
//	p.Rule("moveRight", ship, func(c *jstar.Ctx, s *jstar.Tuple) {
//		if s.Int("x") < 400 {
//			c.PutNew(ship, jstar.Int(s.Int("frame")+1), jstar.Int(s.Int("x")+150),
//				s.Get("y"), s.Get("dx"), s.Get("dy"))
//		}
//	})
//	p.Put(jstar.New(ship, jstar.Int(0), jstar.Int(10), jstar.Int(10),
//		jstar.Int(150), jstar.Int(0)))
//	run, err := p.Execute(jstar.Options{})
//
// Parallelism strategy and data-structure choices are runtime options, not
// program changes: Options.Strategy, Options.Sequential, Options.Threads,
// Options.NoDelta, Options.NoGamma, and Program.GammaHint correspond to the
// paper's compiler flags (-sequential, --threads, -noDelta T, -noGamma T,
// custom stores). Options.StorePlan closes the loop: a finished run's
// RunStats.SuggestStorePlan derives a per-table plan of named store kinds
// from the observed query/put/dup statistics (hash indexes for
// point-probed tables, the int-specialised open-addressing store for
// all-int tables, the columnar store for append-mostly scan workloads),
// and replaying that plan on the next run — Options.StorePlan, or the
// -save-plan/-store-plan flags of cmd/jstar and cmd/jstar-bench — swaps
// the backends without touching the program.
//
// # Lifecycle: Sessions
//
// The primary lifecycle is the long-lived Session — the engine as an
// online incremental service (the paper's §3 event-driven mode, made
// first-class):
//
//	sess, err := p.Start(ctx, jstar.Options{})   // seed + background drain
//	sess.Put(jstar.New(price, ...))              // inject external tuples,
//	sess.PutBatch(t1, t2, t3)                    // concurrently, from any
//	                                             // number of goroutines
//	sess.Quiesce(ctx)                            // wait for the fixpoint
//	sess.Query(price, jstar.Eq(...), visit)      // read quiesced Gamma state
//	sess.Close()                                 // release the executor
//
// Put and PutBatch never wait for quiescence: external tuples are
// published into a multi-producer Disruptor ingress ring and absorbed into
// the Delta set by the coordinator at step boundaries, so ingestion
// overlaps rule execution. The only backpressure is a full ingress ring
// (Options.IngressRing). The ctx passed to Start bounds the whole session:
// cancellation and deadlines are honoured at every step boundary, so even
// a non-terminating program is stoppable without Options.MaxSteps.
//
// A session need not stay on the plan it started with: Options.ReplanEvery
// re-runs the store and strategy planners over windowed statistics at
// quiescent boundaries, migrating drifting tables onto better backends
// live (drain, rebuild, atomic swap — readers never block) and re-picking
// the executor strategy, both behind hysteresis. Session.Migrate performs
// the same store move explicitly, and RunStats.Migrations /
// RunStats.StrategySwitches log every decision taken.
//
// Sessions also go on the wire: cmd/jstar-serve (internal/serve) hosts
// many named programs as a multi-tenant HTTP service — streaming
// ingestion (JSON or binary batch frames) straight into PutBatch, prefix
// queries over quiesced state, and change subscriptions (long-poll/SSE)
// driven by Session.TableVersion / Session.WaitChange, the per-table
// quiesced-change generations folded from each step's Delta accounting.
//
// Program.Execute and Run.ExecuteEvents remain as one-shot compatibility
// wrappers over the same Session machinery: Execute is start-quiesce-close,
// and ExecuteEvents keeps its legacy serial contract of draining to
// quiescence between event batches.
//
// # Execution strategies and batched puts
//
// Options.Strategy selects the execution engine behind one Executor
// interface (internal/exec):
//
//   - StrategySequential — a single-threaded step loop, the -sequential
//     code generator.
//   - StrategyForkJoin — each step's minimal batch fires across a
//     work-stealing fork/join pool (the paper's parallel default, §5).
//   - StrategyPipelined — firings stream through a Disruptor ring buffer
//     to a persistent consumer crew (the §6.3 redesign, generalised).
//   - StrategyAuto (zero value) — the run warms up sequentially, observes
//     the mean batch size, and upgrades itself to the strategy the §1.5
//     statistics heuristic recommends.
//
// All strategies share the batched put protocol: a rule firing appends new
// tuples to a per-worker put buffer instead of locking the global Delta
// tree. At the step boundary each worker seals its buffer — sorts it by
// the Delta-path order and hands it off as one pre-sorted run — and the
// coordinator k-way merges the runs (dropping set-semantics duplicates
// during the merge) straight into the Delta tree, sharding the bulk load
// and the per-table Gamma inserts across the pool where tables cannot
// alias. Batching does not change program semantics — tuples put during
// step k become visible to extraction exactly at the k/k+1 boundary, as
// before — it only removes per-put lock traffic and the serial
// concat-and-re-sort from the hot path. Options.PhaseStats records where
// each step's time goes (RunStats.FireNanos/InsertNanos/MergeNanos/
// DeltaNanos and the Amdahl serial-boundary fraction).
//
// Dispatch is batch-first too: each strategy partitions a step's live
// batch into contiguous chunks (grain-sized chunks on the fork/join pool,
// ring segments on the Disruptor) and hands whole chunks to the engine,
// which amortises rule lookup, statistics accounting and rule-context
// setup per (schema, rule) group. A Rule may additionally provide a
// BatchBody — a body invoked once per chunk instead of once per tuple —
// and batch bodies can route grouped point queries through
// Ctx.ForEachBatch, which issues one batched Gamma probe sequence
// (pre-hashed on hash stores, single lock episode on tree stores) for the
// whole chunk. Within one step, firing order across and inside chunks is
// unspecified, exactly as the paper specifies for one parallel batch.
//
// Options.TableAffinity layers table-affine sharding over the parallel
// strategies: every table is hashed (by schema ID, overridable with an
// "@N" suffix in the store plan, e.g. "hash:2@1") to one of Threads owner
// shards, fire chunks are grouped by owning shard and routed to the
// pinned worker, put buffers are keyed by (worker, shard), and the
// boundary Gamma flush and Delta merge fan out shard-parallel with no two
// workers ever touching the same table's store. Results are bit-identical
// to an affinity-off run — it is purely a locality/contention knob,
// measured by the jstar-bench -speedup affinity sweep and ignored for
// sequential runs.
package jstar

import (
	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Program is a JStar program definition: tables, orders, rules, puts.
	Program = core.Program
	// Options are the per-run compiler/runtime flags.
	Options = core.Options
	// Ctx is the database view passed to executing rules.
	Ctx = core.Ctx
	// Rule is a registered computation rule.
	Rule = core.Rule
	// Run is one execution of a program.
	Run = core.Run
	// Session is a long-lived, concurrent-safe handle on a running
	// program: Start → Put/PutBatch ⇄ Quiesce → Close (see the package
	// comment's lifecycle section).
	Session = core.Session
	// RunStats carries the per-run usage statistics.
	RunStats = core.RunStats
	// DurabilityOptions turns a session durable (Options.Durability):
	// absorbed tuples tee into a segmented, group-committed write-ahead
	// log, Gamma is checkpointed at quiescent boundaries, and a session
	// started over an existing log directory recovers its state.
	DurabilityOptions = core.DurabilityOptions
	// RecoveryInfo describes what Start recovered from a WAL directory
	// (Session.Recovery).
	RecoveryInfo = core.RecoveryInfo
	// CheckpointInfo describes one published checkpoint
	// (Session.Checkpoint).
	CheckpointInfo = core.CheckpointInfo

	// Tuple is an immutable relation row.
	Tuple = tuple.Tuple
	// Value is a typed column value.
	Value = tuple.Value
	// Schema describes a declared table.
	Schema = tuple.Schema
	// Column describes one table column.
	Column = tuple.Column
	// OrderEntry is one component of a table's orderby list.
	OrderEntry = tuple.OrderEntry
	// Builder constructs tuples field by field.
	Builder = tuple.Builder

	// Query selects tuples: an equality prefix plus a residual predicate.
	Query = gamma.Query
	// Store is a Gamma table's storage.
	Store = gamma.Store
	// StoreFactory builds a Store for a schema (a data-structure hint).
	StoreFactory = gamma.StoreFactory
	// StorePlan maps table names to named store kinds ("hash:2",
	// "columnar", ...) — the serialisable, validated form of per-table
	// store selection (Options.StorePlan). Plans usually come from a
	// previous run: RunStats.SuggestStorePlan derives one from observed
	// per-table statistics, closing the profile-guided tuning loop.
	StorePlan = gamma.StorePlan

	// Strategy selects the execution engine for a run (Options.Strategy).
	Strategy = exec.Strategy
)

// Execution strategies (see the package comment).
const (
	// StrategyAuto warms up sequentially and picks from observed batch
	// statistics.
	StrategyAuto = exec.Auto
	// StrategySequential fires every rule on one goroutine.
	StrategySequential = exec.Sequential
	// StrategyForkJoin fires each step batch across a work-stealing pool.
	StrategyForkJoin = exec.ForkJoin
	// StrategyPipelined streams firings through a Disruptor ring to a
	// persistent consumer crew.
	StrategyPipelined = exec.Pipelined
)

// ParseStrategy parses a -strategy flag value
// (auto|sequential|forkjoin|pipelined).
func ParseStrategy(s string) (Strategy, error) { return exec.ParseStrategy(s) }

// ErrSessionClosed is returned by Session operations after Close.
var ErrSessionClosed = core.ErrSessionClosed

// NewProgram returns an empty program.
func NewProgram() *Program { return core.NewProgram() }

// Value constructors.
var (
	// Int makes an int Value.
	Int = tuple.Int
	// Float makes a double Value.
	Float = tuple.Float
	// Str makes a String Value.
	Str = tuple.String_
	// Bool makes a boolean Value.
	Bool = tuple.Bool
)

// New constructs a tuple positionally (panics on schema mismatch).
func New(s *Schema, fields ...Value) *Tuple { return tuple.New(s, fields...) }

// NewBuilder returns a field-by-field tuple builder with zero defaults.
func NewBuilder(s *Schema) *Builder { return tuple.NewBuilder(s) }

// CopyOf returns a builder seeded from an existing tuple (the generated
// copy method: update a few fields, build a new immutable tuple).
func CopyOf(t *Tuple) *Builder { return tuple.CopyOf(t) }

// Column constructors.

// IntCol declares an int column.
func IntCol(name string) Column { return Column{Name: name, Kind: tuple.KindInt} }

// FloatCol declares a double column.
func FloatCol(name string) Column { return Column{Name: name, Kind: tuple.KindFloat} }

// StrCol declares a String column.
func StrCol(name string) Column { return Column{Name: name, Kind: tuple.KindString} }

// BoolCol declares a boolean column.
func BoolCol(name string) Column { return Column{Name: name, Kind: tuple.KindBool} }

// KeyInt declares an int primary-key column (left of `->`).
func KeyInt(name string) Column { return Column{Name: name, Kind: tuple.KindInt, Key: true} }

// KeyStr declares a String primary-key column.
func KeyStr(name string) Column { return Column{Name: name, Kind: tuple.KindString, Key: true} }

// Cols collects columns (reads like the parenthesised declaration list).
func Cols(cs ...Column) []Column { return cs }

// OrderBy collects orderby entries.
func OrderBy(es ...OrderEntry) []OrderEntry { return es }

// Orderby entry constructors.
var (
	// Lit is a literal orderby entry, ordered by `order` declarations.
	Lit = tuple.Lit
	// Seq is a `seq field` entry: sorted sequentially by the field.
	Seq = tuple.Seq
	// Par is a `par field` entry: unordered, parallel subtrees.
	Par = tuple.Par
)

// Eq builds a Query matching an equality prefix of column values.
func Eq(prefix ...Value) Query { return Query{Prefix: prefix} }

// Where builds a Query with an equality prefix and residual predicate —
// the `[lambda]` part of a JStar query.
func Where(pred func(*Tuple) bool, prefix ...Value) Query {
	return Query{Prefix: prefix, Where: pred}
}

// Gamma data-structure hints (paper stage 4).
var (
	// TreeStore is the sequential NavigableSet default (TreeSet).
	TreeStore StoreFactory = gamma.NewTreeStore
	// SkipStore is the parallel NavigableSet default (ConcurrentSkipListSet).
	SkipStore StoreFactory = gamma.NewSkipStore
)

// HashStore hashes on the first k columns (point queries in O(1)).
func HashStore(k int) StoreFactory { return gamma.NewHashStore(k) }

// IntHashStore is the int-specialised open-addressing store keyed on the
// first k columns: flat int64 rows, O(1) full-row dedup, O(chain) prefix
// probes. All columns must be ints.
func IntHashStore(k int) StoreFactory { return gamma.NewIntHashStore(k) }

// ColumnarStore is the compressed append-only columnar store: one typed
// slice per column, dictionary-encoded strings, tuples materialised only
// for rows surviving the column-level prefix filter. Best for append-
// mostly tables read by scans.
var ColumnarStore StoreFactory = gamma.NewColumnarStore

// StoreKinds lists the legal named store kinds accepted by
// Options.StorePlan ("tree", "skip", "hash", "inthash", "columnar",
// "arrayhash", "dense3d", "rolling"; see gamma.FactoryFor for parameter
// syntax).
func StoreKinds() []string { return gamma.StoreKinds() }

// ArrayOfHashSets indexes one small-range int column with a hash set per
// slot — the custom PvWatts structure of §6.2.
func ArrayOfHashSets(col int, lo, hi int64) StoreFactory {
	return gamma.NewArrayOfHashSets(col, lo, hi)
}

// Dense3D stores (int a, int b, int c -> int v) tables in flat native
// arrays — the §6.4 native-arrays optimisation.
func Dense3D(na, nb, nc int) StoreFactory { return gamma.NewDense3D(na, nb, nc) }

// RollingFloatArray stores (int iter, int index -> double v) tables in a
// two-iteration rolling array — the §6.6 Median optimisation.
func RollingFloatArray(n int) StoreFactory { return gamma.NewRollingFloatArray(n) }
