package jstar_test

import (
	"sort"
	"strings"
	"testing"

	"github.com/jstar-lang/jstar"
)

// TestPublicAPIQuickstart exercises the doc-comment example end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	p := jstar.NewProgram()
	ship := p.Table("Ship",
		jstar.Cols(jstar.KeyInt("frame"), jstar.IntCol("x"), jstar.IntCol("y"),
			jstar.IntCol("dx"), jstar.IntCol("dy")),
		jstar.OrderBy(jstar.Lit("Int"), jstar.Seq("frame")))
	p.Rule("moveRight", ship, func(c *jstar.Ctx, s *jstar.Tuple) {
		if s.Int("x") < 400 {
			c.PutNew(ship, jstar.Int(s.Int("frame")+1), jstar.Int(s.Int("x")+150),
				s.Get("y"), s.Get("dx"), s.Get("dy"))
		}
	})
	p.Put(jstar.New(ship, jstar.Int(0), jstar.Int(10), jstar.Int(10),
		jstar.Int(150), jstar.Int(0)))
	run, err := p.Execute(jstar.Options{CheckCausality: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Gamma().Table(ship).Len() != 4 {
		t.Errorf("ship tuples = %d", run.Gamma().Table(ship).Len())
	}
}

func TestPublicAPIQueriesAndHints(t *testing.T) {
	p := jstar.NewProgram()
	reading := p.Table("Reading",
		jstar.Cols(jstar.IntCol("month"), jstar.IntCol("power")),
		jstar.OrderBy(jstar.Lit("Reading")))
	ask := p.Table("Ask", jstar.Cols(jstar.IntCol("q")), jstar.OrderBy(jstar.Lit("Ask")))
	p.Order("Reading", "Ask")
	p.GammaHint("Reading", jstar.HashStore(1))
	var count int
	var highPower int
	p.Rule("query", ask, func(c *jstar.Ctx, tp *jstar.Tuple) {
		count = c.Count(reading, jstar.Eq(jstar.Int(1)))
		highPower = c.Count(reading, jstar.Where(
			func(r *jstar.Tuple) bool { return r.Int("power") > 100 }, jstar.Int(1)))
	})
	p.Put(jstar.New(reading, jstar.Int(1), jstar.Int(50)))
	p.Put(jstar.New(reading, jstar.Int(1), jstar.Int(150)))
	p.Put(jstar.New(reading, jstar.Int(2), jstar.Int(999)))
	p.Put(jstar.New(ask, jstar.Int(0)))
	if _, err := p.Execute(jstar.Options{Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if count != 2 || highPower != 1 {
		t.Errorf("count = %d, highPower = %d", count, highPower)
	}
}

func TestPublicAPIBuilders(t *testing.T) {
	p := jstar.NewProgram()
	s := p.Table("T",
		jstar.Cols(jstar.IntCol("a"), jstar.FloatCol("b"), jstar.StrCol("c"), jstar.BoolCol("d")),
		nil)
	tp := jstar.NewBuilder(s).SetInt("a", 1).SetFloat("b", 2.5).
		SetString("c", "x").SetBool("d", true).Build()
	if tp.Int("a") != 1 || tp.Float("b") != 2.5 || tp.Str("c") != "x" {
		t.Error("builder fields")
	}
	cp := jstar.CopyOf(tp).SetInt("a", 9).Build()
	if cp.Int("a") != 9 || cp.Float("b") != 2.5 {
		t.Error("copy-update")
	}
}

// TestDeterministicOutputAcrossStrategies is the §1.3 property on the
// public API: the output tuple *set* is identical across sequential,
// 2-thread and 8-thread executions (only ordering within batches differs).
func TestDeterministicOutputAcrossStrategies(t *testing.T) {
	build := func() (*jstar.Program, *jstar.Schema, *jstar.Schema) {
		p := jstar.NewProgram()
		work := p.Table("Work", jstar.Cols(jstar.IntCol("step"), jstar.IntCol("item")),
			jstar.OrderBy(jstar.Lit("Int"), jstar.Seq("step")))
		out := p.Table("Out", jstar.Cols(jstar.IntCol("step"), jstar.IntCol("sum")),
			jstar.OrderBy(jstar.Lit("Out")))
		p.Order("Int", "Out")
		p.Rule("spread", work, func(c *jstar.Ctx, w *jstar.Tuple) {
			step, item := w.Int("step"), w.Int("item")
			if step < 6 {
				c.PutNew(work, jstar.Int(step+1), jstar.Int(item*2+1))
				c.PutNew(work, jstar.Int(step+1), jstar.Int(item*2))
			}
			c.PutNew(out, jstar.Int(step), jstar.Int(item))
		})
		p.Put(jstar.New(work, jstar.Int(0), jstar.Int(1)))
		return p, work, out
	}
	results := make([][]string, 0, 3)
	for _, opts := range []jstar.Options{
		{Sequential: true}, {Threads: 2}, {Threads: 8},
	} {
		p, _, out := build()
		run, err := p.Execute(opts)
		if err != nil {
			t.Fatal(err)
		}
		var rows []string
		run.Gamma().Table(out).Scan(func(tp *jstar.Tuple) bool {
			rows = append(rows, tp.String())
			return true
		})
		sort.Strings(rows)
		results = append(results, rows)
	}
	for i := 1; i < len(results); i++ {
		if strings.Join(results[i], "|") != strings.Join(results[0], "|") {
			t.Fatalf("strategy %d produced a different output set", i)
		}
	}
}
