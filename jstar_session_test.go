package jstar_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/jstar-lang/jstar"
)

// tradingMonitor builds the examples/events program: Price events stream
// in, a rule maintains the running maximum per symbol and emits an ordered
// alert line for each new high.
func tradingMonitor() (p *jstar.Program, price, high *jstar.Schema) {
	p = jstar.NewProgram()
	price = p.Table("Price",
		jstar.Cols(jstar.IntCol("t"), jstar.StrCol("sym"), jstar.IntCol("cents")),
		jstar.OrderBy(jstar.Seq("t"), jstar.Lit("Price")))
	high = p.Table("High",
		jstar.Cols(jstar.IntCol("t"), jstar.StrCol("sym"), jstar.IntCol("cents")),
		jstar.OrderBy(jstar.Seq("t"), jstar.Lit("High")))
	alert := p.PrintlnTable("Alert",
		jstar.OrderBy(jstar.Seq("line"), jstar.Lit("Alert")))
	p.Order("Price", "High", "Alert")
	p.Rule("watchHighs", price, func(c *jstar.Ctx, e *jstar.Tuple) {
		t, sym, cents := e.Int("t"), e.Str("sym"), e.Int("cents")
		best := int64(-1)
		c.ForEach(high, jstar.Where(func(h *jstar.Tuple) bool {
			return h.Str("sym") == sym && h.Int("t") < t
		}), func(h *jstar.Tuple) bool {
			if h.Int("cents") > best {
				best = h.Int("cents")
			}
			return true
		})
		if cents > best {
			c.PutNew(high, jstar.Int(t), jstar.Str(sym), jstar.Int(cents))
			c.PutNew(alert, jstar.Str(fmt.Sprintf("t=%02d new high %s %d.%02d",
				t, sym, cents/100, cents%100)))
		}
	})
	return p, price, high
}

type priceEvent struct {
	t     int64
	sym   string
	cents int64
}

var tradingFeed = []priceEvent{
	{1, "ACME", 1000}, {2, "GLOB", 500}, {3, "ACME", 990},
	{4, "ACME", 1020}, {5, "GLOB", 480}, {6, "GLOB", 510},
	{7, "ACME", 1019}, {8, "ACME", 1100},
}

// dump renders the full final database state (every table, every tuple)
// plus the sorted output lines, for state-for-state comparison.
func dump(run *jstar.Run) string {
	var b strings.Builder
	for _, s := range run.Program().Tables() {
		var rows []string
		run.Gamma().Table(s).Scan(func(tp *jstar.Tuple) bool {
			rows = append(rows, tp.String())
			return true
		})
		sort.Strings(rows)
		fmt.Fprintf(&b, "%s: %v\n", s.Name, rows)
	}
	lines := append([]string(nil), run.Output()...)
	sort.Strings(lines)
	fmt.Fprintf(&b, "output: %v\n", lines)
	return b.String()
}

// TestSessionExecuteEventsParity is the acceptance parity check: the
// examples/events program must reach an identical final database state
// whether the feed is injected through the legacy blocking ExecuteEvents
// loop or through Session.Put + Quiesce. Run with -race in CI.
func TestSessionExecuteEventsParity(t *testing.T) {
	// Legacy path: channel-fed ExecuteEvents.
	pLegacy, priceL, _ := tradingMonitor()
	runLegacy, err := pLegacy.NewRun(jstar.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan *jstar.Tuple)
	go func() {
		defer close(events)
		for _, e := range tradingFeed {
			events <- jstar.New(priceL, jstar.Int(e.t), jstar.Str(e.sym), jstar.Int(e.cents))
		}
	}()
	if err := runLegacy.ExecuteEvents(events); err != nil {
		t.Fatal(err)
	}

	// Session path: async ingestion from a producer goroutine, one
	// quiescence at the end.
	pSess, priceS, _ := tradingMonitor()
	sess, err := pSess.Start(context.Background(), jstar.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	done := make(chan error, 1)
	go func() {
		for _, e := range tradingFeed {
			if err := sess.Put(jstar.New(priceS, jstar.Int(e.t), jstar.Str(e.sym), jstar.Int(e.cents))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := sess.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}

	want, got := dump(runLegacy), dump(sess.Run())
	if want != got {
		t.Errorf("final database states differ:\n-- ExecuteEvents --\n%s-- Session --\n%s", want, got)
	}
}
